package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSigCanonical(t *testing.T) {
	if got := Sig(3, 7); got != (Signature{Hi: 7, Lo: 3}) {
		t.Errorf("Sig(3,7) = %v, want 7x3", got)
	}
	if got := Sig(7, 3); got != (Signature{Hi: 7, Lo: 3}) {
		t.Errorf("Sig(7,3) = %v, want 7x3", got)
	}
	if got := AddSig(12); got != (Signature{Hi: 12, Lo: 12}) {
		t.Errorf("AddSig(12) = %v", got)
	}
}

func TestSignatureValid(t *testing.T) {
	cases := []struct {
		s    Signature
		want bool
	}{
		{Signature{8, 8}, true},
		{Signature{8, 1}, true},
		{Signature{0, 0}, false},
		{Signature{8, 0}, false},
		{Signature{3, 8}, false}, // non-canonical
	}
	for _, c := range cases {
		if got := c.s.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestCovers(t *testing.T) {
	big := Sig(16, 12)
	cases := []struct {
		op   Signature
		want bool
	}{
		{Sig(16, 12), true},
		{Sig(12, 12), true},
		{Sig(16, 16), false},
		{Sig(17, 1), false},
		{Sig(1, 1), true},
	}
	for _, c := range cases {
		if got := big.Covers(c.op); got != c.want {
			t.Errorf("16x12 covers %v = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestCoversPartialOrder(t *testing.T) {
	// Covering must be a partial order on canonical signatures:
	// reflexive, antisymmetric, transitive.
	rnd := rand.New(rand.NewSource(1))
	sig := func() Signature { return Sig(1+rnd.Intn(32), 1+rnd.Intn(32)) }
	for i := 0; i < 2000; i++ {
		a, b, c := sig(), sig(), sig()
		if !a.Covers(a) {
			t.Fatalf("not reflexive: %v", a)
		}
		if a.Covers(b) && b.Covers(a) && a != b {
			t.Fatalf("not antisymmetric: %v %v", a, b)
		}
		if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
			t.Fatalf("not transitive: %v %v %v", a, b, c)
		}
	}
}

func TestJoinIsLeastUpperBound(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		a := Sig(int(a1%32)+1, int(a2%32)+1)
		b := Sig(int(b1%32)+1, int(b2%32)+1)
		j := a.Join(b)
		if !j.Covers(a) || !j.Covers(b) {
			return false
		}
		// Least: any signature covering both covers the join.
		for hi := 1; hi <= 33; hi++ {
			for lo := 1; lo <= hi; lo++ {
				s := Signature{Hi: hi, Lo: lo}
				if s.Covers(a) && s.Covers(b) && !s.Covers(j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHardwareClass(t *testing.T) {
	if Add.HardwareClass() != Add || Sub.HardwareClass() != Add || Mul.HardwareClass() != Mul {
		t.Error("hardware class mapping broken")
	}
}

func TestOpTypeString(t *testing.T) {
	if Add.String() != "add" || Sub.String() != "sub" || Mul.String() != "mul" {
		t.Error("OpType.String broken")
	}
	if OpType(9).String() != "OpType(9)" {
		t.Errorf("unknown type string: %s", OpType(9))
	}
}

func TestKindString(t *testing.T) {
	if got := (Kind{Class: Mul, Sig: Sig(16, 12)}).String(); got != "mul 16x12" {
		t.Errorf("kind string = %q", got)
	}
	if got := (Kind{Class: Add, Sig: AddSig(12)}).String(); got != "add 12" {
		t.Errorf("kind string = %q", got)
	}
}

func TestKindCovers(t *testing.T) {
	adder := Kind{Class: Add, Sig: AddSig(12)}
	if !adder.Covers(Add, AddSig(8)) {
		t.Error("12-bit adder must cover 8-bit add")
	}
	if !adder.Covers(Sub, AddSig(12)) {
		t.Error("12-bit adder must cover 12-bit sub")
	}
	if adder.Covers(Mul, Sig(2, 2)) {
		t.Error("adder must not cover mul")
	}
	if adder.Covers(Add, AddSig(13)) {
		t.Error("12-bit adder must not cover 13-bit add")
	}
}

func TestDefaultLatency(t *testing.T) {
	lib := Default()
	cases := []struct {
		k    Kind
		want int
	}{
		{Kind{Add, AddSig(4)}, 2},
		{Kind{Add, AddSig(32)}, 2},
		{Kind{Mul, Sig(8, 8)}, 2},   // ceil(16/8)
		{Kind{Mul, Sig(9, 8)}, 3},   // ceil(17/8)
		{Kind{Mul, Sig(16, 16)}, 4}, // ceil(32/8)
		{Kind{Mul, Sig(25, 25)}, 7}, // ceil(50/8), Fig. 2's 25x25 mult
		{Kind{Mul, Sig(20, 18)}, 5}, // ceil(38/8), Fig. 2's 20x18 mult
	}
	for _, c := range cases {
		if got := lib.Latency(c.k); got != c.want {
			t.Errorf("latency(%v) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestDefaultArea(t *testing.T) {
	lib := Default()
	if got := lib.Area(Kind{Add, AddSig(12)}); got != 12 {
		t.Errorf("area(add 12) = %d", got)
	}
	if got := lib.Area(Kind{Mul, Sig(16, 12)}); got != 192 {
		t.Errorf("area(mul 16x12) = %d", got)
	}
}

func TestCostMonotoneUnderCovering(t *testing.T) {
	lib := Default()
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a := Sig(1+rnd.Intn(32), 1+rnd.Intn(32))
		b := Sig(1+rnd.Intn(32), 1+rnd.Intn(32))
		if !a.Covers(b) {
			continue
		}
		for _, class := range []OpType{Add, Mul} {
			ka, kb := Kind{class, a}, Kind{class, b}
			if lib.Latency(ka) < lib.Latency(kb) {
				t.Fatalf("latency not monotone: %v < %v", ka, kb)
			}
			if lib.Area(ka) < lib.Area(kb) {
				t.Fatalf("area not monotone: %v < %v", ka, kb)
			}
		}
	}
}

func TestExtractKindsSimple(t *testing.T) {
	lib := Default()
	ops := []OpSpec{
		{Add, AddSig(8)},
		{Add, AddSig(12)},
		{Sub, AddSig(8)}, // duplicate kind with the first add
		{Mul, Sig(8, 8)},
	}
	kinds := ExtractKinds(ops, lib)
	want := []Kind{
		{Add, AddSig(8)},
		{Add, AddSig(12)},
		{Mul, Sig(8, 8)},
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d kinds %v, want %d", len(kinds), kinds, len(want))
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Errorf("kinds[%d] = %v, want %v", i, kinds[i], k)
		}
	}
}

func TestExtractKindsJoinClosure(t *testing.T) {
	lib := Default()
	ops := []OpSpec{
		{Mul, Sig(12, 8)},
		{Mul, Sig(10, 9)},
	}
	kinds := ExtractKinds(ops, lib)
	// Join of 12x8 and 10x9 is 12x9, which covers both.
	found := false
	for _, k := range kinds {
		if k == (Kind{Mul, Sig(12, 9)}) {
			found = true
		}
	}
	if !found {
		t.Errorf("join closure missing 12x9: %v", kinds)
	}
	if len(kinds) != 3 {
		t.Errorf("want 3 kinds, got %v", kinds)
	}
}

func TestExtractKindsSortedAndUnique(t *testing.T) {
	lib := Default()
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rnd.Intn(12)
		ops := make([]OpSpec, n)
		for i := range ops {
			if rnd.Intn(2) == 0 {
				ops[i] = OpSpec{Add, AddSig(1 + rnd.Intn(24))}
			} else {
				ops[i] = OpSpec{Mul, Sig(1+rnd.Intn(24), 1+rnd.Intn(24))}
			}
		}
		kinds := ExtractKinds(ops, lib)
		seen := make(map[Kind]bool)
		for i, k := range kinds {
			if seen[k] {
				t.Fatalf("duplicate kind %v", k)
			}
			seen[k] = true
			if i > 0 {
				a, b := kinds[i-1], k
				if a.Class > b.Class {
					t.Fatalf("kinds not sorted by class: %v before %v", a, b)
				}
				if a.Class == b.Class && lib.Area(a) > lib.Area(b) {
					t.Fatalf("kinds not sorted by area: %v before %v", a, b)
				}
			}
		}
		// Every operation must be covered by at least one kind (its own).
		for _, o := range ops {
			ok := false
			for _, k := range kinds {
				if k.Covers(o.Type, o.Sig) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("operation %v uncovered by %v", o, kinds)
			}
		}
		// Closure property: join of any two same-class kinds is present.
		for _, a := range kinds {
			for _, b := range kinds {
				if a.Class != b.Class {
					continue
				}
				if !seen[Kind{a.Class, a.Sig.Join(b.Sig)}] {
					t.Fatalf("closure missing join of %v and %v", a, b)
				}
			}
		}
	}
}

func TestMinKindAndMinLatency(t *testing.T) {
	lib := Default()
	o := OpSpec{Sub, AddSig(9)}
	if o.MinKind() != (Kind{Add, AddSig(9)}) {
		t.Errorf("MinKind(sub 9) = %v", o.MinKind())
	}
	if MinLatency(o, lib) != 2 {
		t.Errorf("MinLatency(sub 9) = %d", MinLatency(o, lib))
	}
	m := OpSpec{Mul, Sig(20, 18)}
	if MinLatency(m, lib) != 5 {
		t.Errorf("MinLatency(mul 20x18) = %d", MinLatency(m, lib))
	}
}
