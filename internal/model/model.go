// Package model defines the hardware cost model for multiple-wordlength
// datapath allocation: operation types, wordlength signatures, concrete
// resource kinds, and the latency/area functions the paper assumes
// (adders cost 2 cycles at any width; an n×m-bit multiplier costs
// ⌈(n+m)/8⌉ cycles at the SONIC platform clock rate).
//
// All three allocation methods in this repository (the DPAlloc heuristic,
// the two-stage baseline and the ILP optimum) share one Library value, so
// area comparisons between them are internally consistent.
package model

import (
	"fmt"
	"sort"
)

// OpType identifies the functional class of an operation or resource.
type OpType uint8

// The operation types of the paper's examples. Sub shares adder hardware.
const (
	Add OpType = iota
	Sub
	Mul
	numOpTypes
)

// NumOpTypes is the count of distinct operation types.
const NumOpTypes = int(numOpTypes)

// String returns the conventional short name of the type.
func (t OpType) String() string {
	switch t {
	case Add:
		return "add"
	case Sub:
		return "sub"
	case Mul:
		return "mul"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(t))
	}
}

// HardwareClass maps an operation type to the resource class that executes
// it. Add and Sub share adder hardware; Mul uses multipliers.
func (t OpType) HardwareClass() OpType {
	if t == Sub {
		return Add
	}
	return t
}

// Signature is the wordlength signature of an operation or resource kind.
// For multipliers both operand widths matter and multiplication is
// commutative, so signatures are canonicalised with Hi >= Lo.
// For adders only the operand width matters; Lo is stored equal to Hi so
// that the join operation is uniform across types.
type Signature struct {
	Hi int // larger operand width in bits
	Lo int // smaller operand width in bits
}

// Sig builds a canonical signature from two operand widths.
func Sig(a, b int) Signature {
	if a < b {
		a, b = b, a
	}
	return Signature{Hi: a, Lo: b}
}

// AddSig builds the canonical signature of a width-w adder or addition.
func AddSig(w int) Signature { return Signature{Hi: w, Lo: w} }

// Valid reports whether the signature has positive canonical widths.
func (s Signature) Valid() bool { return s.Lo > 0 && s.Hi >= s.Lo }

// Covers reports whether a resource with signature s can execute an
// operation with signature o: each operand of o must fit in the
// corresponding (canonically ordered) port of s.
func (s Signature) Covers(o Signature) bool {
	return s.Hi >= o.Hi && s.Lo >= o.Lo
}

// Join is the element-wise maximum of two canonical signatures: the
// smallest signature covering both. Note that for canonical inputs the
// result is canonical.
func (s Signature) Join(o Signature) Signature {
	return Signature{Hi: max(s.Hi, o.Hi), Lo: max(s.Lo, o.Lo)}
}

// String renders the signature as "HixLo".
func (s Signature) String() string { return fmt.Sprintf("%dx%d", s.Hi, s.Lo) }

// Kind is a concrete resource-wordlength type: an element of the paper's
// set R, for example "16x16-bit multiplier" or "12-bit adder".
type Kind struct {
	Class OpType // hardware class (Add covers Add and Sub operations)
	Sig   Signature
}

// String renders the kind, e.g. "mul 16x12" or "add 12".
func (k Kind) String() string {
	if k.Class == Add {
		return fmt.Sprintf("add %d", k.Sig.Hi)
	}
	return fmt.Sprintf("%s %s", k.Class, k.Sig)
}

// Covers reports whether the kind can execute an operation of type t with
// signature o ("resources can execute operations up to the wordlength of
// the resource").
func (k Kind) Covers(t OpType, o Signature) bool {
	return k.Class == t.HardwareClass() && k.Sig.Covers(o)
}

// Library is the pluggable hardware cost model. The zero value is not
// usable; construct one with Default or populate every field.
//
// Latency returns the cycle count of a resource kind at the target clock
// rate; it must be monotone non-decreasing under signature covering, and
// >= 1. Area returns the silicon cost of one instance; it must be
// strictly positive and monotone under covering.
type Library struct {
	Latency func(Kind) int
	Area    func(Kind) int64
}

// Default returns the paper's cost model: adders always take 2 cycles and
// cost their width in area units; an n×m multiplier takes ⌈(n+m)/8⌉
// cycles (the SONIC empirical formula) and costs n·m area units.
func Default() *Library {
	return &Library{
		Latency: func(k Kind) int {
			if k.Class == Add {
				return 2
			}
			return (k.Sig.Hi + k.Sig.Lo + 7) / 8
		},
		Area: func(k Kind) int64 {
			if k.Class == Add {
				return int64(k.Sig.Hi)
			}
			return int64(k.Sig.Hi) * int64(k.Sig.Lo)
		},
	}
}

// OpSpec is the (type, signature) pair of one operation; the input to
// resource-kind extraction.
type OpSpec struct {
	Type OpType
	Sig  Signature
}

// MinKind returns the smallest resource kind that can execute the
// operation: its own signature in its own hardware class.
func (o OpSpec) MinKind() Kind {
	return Kind{Class: o.Type.HardwareClass(), Sig: o.Sig}
}

// OperandWidths returns the bit widths of the operation's two operand
// slots in the repository's fixed-point format convention: a multiplier
// takes its canonically ordered Hi×Lo operands, an adder/subtractor takes
// two same-width words of Hi bits. This is the authoritative statement of
// each operation's data format — the RTL emitter sizes ports and operand
// multiplexers from it, and the netlist analyzer checks emitted modules
// against it.
func (o OpSpec) OperandWidths() [2]int {
	if o.Type.HardwareClass() == Mul {
		return [2]int{o.Sig.Hi, o.Sig.Lo}
	}
	return [2]int{o.Sig.Hi, o.Sig.Hi}
}

// ResultWidth returns the bit width of the operation's result: the
// full-width Hi+Lo product for multiplications, the operand width for
// additions and subtractions (truncating ring arithmetic — the carry out
// of the word is discarded, matching internal/fxsim).
func (o OpSpec) ResultWidth() int {
	if o.Type.HardwareClass() == Mul {
		return o.Sig.Hi + o.Sig.Lo
	}
	return o.Sig.Hi
}

// PortWidths returns the data-port formats of one hardware instance of
// the kind: the two operand widths and the result width. For multipliers
// the output carries the full Hi+Lo-bit product; adders produce a word
// the same width as their operands.
func (k Kind) PortWidths() (a, b, out int) {
	if k.Class == Mul {
		return k.Sig.Hi, k.Sig.Lo, k.Sig.Hi + k.Sig.Lo
	}
	return k.Sig.Hi, k.Sig.Hi, k.Sig.Hi
}

// ExtractKinds computes the resource set R from the operation set, after
// the extraction algorithm of Constantinides et al. (Electronics Letters
// 36(17), reference [5] of the paper): the distinct minimal kinds of the
// operations, closed under element-wise join of signatures within each
// hardware class, so that every useful covering resource type is
// available to the binder. The result is sorted by class, then area
// ascending, then signature, and contains no duplicates.
func ExtractKinds(ops []OpSpec, lib *Library) []Kind {
	seen := make(map[Kind]bool)
	perClass := make(map[OpType][]Signature)
	for _, o := range ops {
		k := o.MinKind()
		if !seen[k] {
			seen[k] = true
			perClass[k.Class] = append(perClass[k.Class], k.Sig)
		}
	}
	// Close each class under pairwise join until fixpoint. The closure of
	// a finite set under join is finite (bounded by the grid of distinct
	// Hi values × distinct Lo values), so this terminates.
	for class, sigs := range perClass {
		work := sigs
		for len(work) > 0 {
			var added []Signature
			for _, a := range work {
				for _, b := range perClass[class] {
					j := a.Join(b)
					k := Kind{Class: class, Sig: j}
					if !seen[k] {
						seen[k] = true
						added = append(added, j)
					}
				}
			}
			perClass[class] = append(perClass[class], added...)
			work = added
		}
	}
	kinds := make([]Kind, 0, len(seen))
	for k := range seen {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		a, b := kinds[i], kinds[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if aa, ba := lib.Area(a), lib.Area(b); aa != ba {
			return aa < ba
		}
		if a.Sig.Hi != b.Sig.Hi {
			return a.Sig.Hi < b.Sig.Hi
		}
		return a.Sig.Lo < b.Sig.Lo
	})
	return kinds
}

// MinLatency returns the latency of the operation on its minimal kind,
// i.e. the fastest the operation can possibly execute.
func MinLatency(o OpSpec, lib *Library) int { return lib.Latency(o.MinKind()) }
