package model

import "fmt"

// Arith is the operator alphabet of the library's fixed-point
// semantics: unsigned truncating ring arithmetic over words of explicit
// width. Trunc keeps the low `width` bits of a value (the value modulo
// 2^width); Add, Sub and Mul are the exact integer operators, with all
// wordlength discipline expressed through explicit Trunc applications.
//
// The type parameter lets one semantics drive several evaluators: fxsim
// instantiates it over uint64 machine words, and the rtl layer's equiv
// prover instantiates it over symbolic expression DAGs.
type Arith[T any] interface {
	Trunc(width int, x T) T
	Add(x, y T) T
	Sub(x, y T) T
	Mul(x, y T) T
}

// Reference evaluates one operation on raw operand values under the
// repository's fixed-point convention: each operand is truncated to its
// slot width, the operator is applied exactly, and the result is
// truncated to the operation's result width. This is the single
// authoritative statement of what an operation computes — the simulator
// and the symbolic equivalence prover both instantiate it, so they
// cannot drift apart.
func Reference[T any](ev Arith[T], o OpSpec, a, b T) T {
	w := o.OperandWidths()
	a = ev.Trunc(w[0], a)
	b = ev.Trunc(w[1], b)
	var r T
	switch o.Type {
	case Add:
		r = ev.Add(a, b)
	case Sub:
		r = ev.Sub(a, b)
	case Mul:
		r = ev.Mul(a, b)
	default:
		panic(fmt.Sprintf("model: unknown op type %v", o.Type))
	}
	return ev.Trunc(o.ResultWidth(), r)
}
