// Package descend implements the second literature baseline sketched in
// the paper's introduction: modifying a standard clique-partitioning
// resource binder to "select cliques by sorting nodes in descending order
// of wordlength" (Kum and Sung, SiPS'98, reference [14] of the paper).
//
// On top of the same wordlength-blind schedule as the two-stage baseline,
// operations are bound constructively in descending order of their
// dedicated-resource area, each joining the first compatible clique
// (same hardware class, same native latency band so the schedule stays
// legal, time-disjoint) or opening a new one. This is the greedy
// counterpart of the optimal branch-and-bound binding in package
// twostage; it shares the same structural limitation — no cross-band
// sharing — plus the greed.
package descend

import (
	"context"
	"fmt"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/twostage"
)

// Allocate runs the descending-wordlength baseline.
func Allocate(d *dfg.Graph, lib *model.Library, lambda int) (*datapath.Datapath, error) {
	return AllocateCtx(context.Background(), d, lib, lambda)
}

// AllocateCtx is Allocate with cancellation: the schedule configuration
// search and the constructive binding loop poll ctx and return
// ctx.Err() promptly once it is done.
func AllocateCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int) (*datapath.Datapath, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return &datapath.Datapath{}, nil
	}
	start, err := twostage.WordlengthBlindScheduleCtx(ctx, d, lib, lambda)
	if err != nil {
		return nil, err
	}
	dp, err := twostage.GreedyPartitionCtx(ctx, d, lib, start)
	if err != nil {
		return nil, err
	}
	if err := dp.Verify(d, lib, lambda); err != nil {
		return nil, fmt.Errorf("descend: internal error, illegal datapath: %w", err)
	}
	return dp, nil
}
