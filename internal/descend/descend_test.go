package descend

import (
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
	"repro/internal/twostage"
)

func TestAllocateEmpty(t *testing.T) {
	dp, err := Allocate(dfg.New(), model.Default(), 0)
	if err != nil || len(dp.Instances) != 0 {
		t.Fatalf("%v %v", dp, err)
	}
}

func TestLegalOnRandomGraphs(t *testing.T) {
	lib := model.Default()
	for seed := int64(0); seed < 50; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + lmin/5
		dp, err := Allocate(g, lib, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if err := dp.Verify(g, lib, lambda); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNeverBeatsOptimalTwoStage(t *testing.T) {
	// The greedy must be no better than the optimal B&B on the same
	// schedule family (both use the same stage 1, which is
	// deterministic).
	lib := model.Default()
	for seed := int64(0); seed < 40; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + lmin/4
		greedy, err := Allocate(g, lib, lambda)
		if err != nil {
			t.Fatal(err)
		}
		opt, stats, err := twostage.Allocate(g, lib, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Capped {
			continue // not a proven optimum; skip the comparison
		}
		if greedy.Area(lib) < opt.Area(lib) {
			t.Fatalf("seed %d: greedy area %d beats optimal %d", seed, greedy.Area(lib), opt.Area(lib))
		}
	}
}

func TestCyclicRejected(t *testing.T) {
	d := dfg.New()
	a := d.AddOp("", model.Add, model.AddSig(8))
	b := d.AddOp("", model.Add, model.AddSig(8))
	d.AddDep(a, b)
	d.AddDep(b, a)
	if _, err := Allocate(d, model.Default(), 10); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}
