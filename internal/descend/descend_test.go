package descend

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
	"repro/internal/twostage"
)

func TestAllocateEmpty(t *testing.T) {
	dp, err := Allocate(dfg.New(), model.Default(), 0)
	if err != nil || len(dp.Instances) != 0 {
		t.Fatalf("%v %v", dp, err)
	}
}

func TestLegalOnRandomGraphs(t *testing.T) {
	lib := model.Default()
	for seed := int64(0); seed < 50; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + lmin/5
		dp, err := Allocate(g, lib, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if err := dp.Verify(g, lib, lambda); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNeverBeatsOptimalTwoStage(t *testing.T) {
	// The greedy must be no better than the optimal B&B on the same
	// schedule family (both use the same stage 1, which is
	// deterministic).
	lib := model.Default()
	for seed := int64(0); seed < 40; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + lmin/4
		greedy, err := Allocate(g, lib, lambda)
		if err != nil {
			t.Fatal(err)
		}
		opt, stats, err := twostage.Allocate(g, lib, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Capped {
			continue // not a proven optimum; skip the comparison
		}
		if greedy.Area(lib) < opt.Area(lib) {
			t.Fatalf("seed %d: greedy area %d beats optimal %d", seed, greedy.Area(lib), opt.Area(lib))
		}
	}
}

func TestCyclicRejected(t *testing.T) {
	d := dfg.New()
	a := d.AddOp("", model.Add, model.AddSig(8))
	b := d.AddOp("", model.Add, model.AddSig(8))
	d.AddDep(a, b)
	d.AddDep(b, a)
	if _, err := Allocate(d, model.Default(), 10); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

// countdownCtx cancels deterministically at the Nth poll, so the test
// trips the cancellation check inside the binding loop, not before it.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left > 0 {
		c.left--
		return nil
	}
	return context.Canceled
}

func TestAllocateCtxCanceledInBindingLoop(t *testing.T) {
	g, err := tgff.Generate(tgff.Config{N: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lib := model.Default()
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	// Let the stage-1 schedule poll pass; trip at the greedy binding
	// loop's first poll.
	ctx := &countdownCtx{Context: context.Background(), left: 1}
	dp, err := AllocateCtx(ctx, g, lib, lmin+lmin/3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if dp != nil {
		t.Fatal("canceled solve returned a datapath")
	}
}

func TestAllocateCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := tgff.Generate(tgff.Config{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AllocateCtx(ctx, g, model.Default(), 50); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
