package expt

import (
	"context"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	return rows
}

func TestWriteFig3CSV(t *testing.T) {
	var sb strings.Builder
	pts := []Fig3Point{
		{N: 4, Relax: 0, MeanPenaltyPct: 1.25, Graphs: 20},
		{N: 4, Relax: 0.15, MeanPenaltyPct: 13.5, Graphs: 20},
	}
	if err := WriteFig3CSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 3 || rows[0][0] != "ops" || rows[2][1] != "0.15" {
		t.Fatalf("unexpected rows %v", rows)
	}
}

func TestWriteFig4CSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteFig4CSV(&sb, []Fig4Point{{N: 5, MeanPremiumPct: 2.5, Graphs: 18, Capped: 2}}); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 2 || rows[1][0] != "5" || rows[1][3] != "2" {
		t.Fatalf("unexpected rows %v", rows)
	}
}

func TestWriteFig5CSV(t *testing.T) {
	var sb strings.Builder
	pts := []Fig5Point{{N: 7, Heuristic: 9 * time.Millisecond, ILP: 5707 * time.Millisecond, ILPCapped: 1}}
	if err := WriteFig5CSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 2 || rows[1][1] != "9.000" || rows[1][2] != "5707.000" {
		t.Fatalf("unexpected rows %v", rows)
	}
}

// TestFig3FullArea: the full-area scoring variant must run and produce
// finite penalties; with mux overhead counted, penalties are typically
// smaller than the FU-only ones but remain defined on the same cells.
func TestFig3FullArea(t *testing.T) {
	base := Config{Graphs: 4, Seed: 909}
	full := base
	full.FullArea = true
	fu, err := Fig3(context.Background(), base, []int{8}, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := Fig3(context.Background(), full, []int{8}, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fu) != 1 || len(fa) != 1 {
		t.Fatalf("unexpected point counts %d, %d", len(fu), len(fa))
	}
	if fa[0].Graphs != fu[0].Graphs {
		t.Fatalf("graph counts differ: %d vs %d", fa[0].Graphs, fu[0].Graphs)
	}
	if fa[0].MeanPenaltyPct == fu[0].MeanPenaltyPct {
		t.Log("full-area penalty equals FU penalty (possible but unusual)")
	}
}

func TestWriteTable2CSV(t *testing.T) {
	var sb strings.Builder
	rows2 := []Table2Row{{Relax: 0.10, Heuristic: 21 * time.Millisecond, ILP: 2 * time.Minute, ILPCapped: 8}}
	if err := WriteTable2CSV(&sb, rows2); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 2 || rows[1][0] != "1.10" || rows[1][3] != "8" {
		t.Fatalf("unexpected rows %v", rows)
	}
}
