package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV emitters for each experiment, one row per data point, for external
// plotting of the figures (the ASCII writers are for the terminal).

// WriteFig3CSV writes size,relax,penalty_pct,graphs rows.
func WriteFig3CSV(w io.Writer, pts []Fig3Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ops", "relax", "penalty_pct", "graphs"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.Itoa(p.N),
			fmt.Sprintf("%.2f", p.Relax),
			fmt.Sprintf("%.4f", p.MeanPenaltyPct),
			strconv.Itoa(p.Graphs),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig4CSV writes size,premium_pct,graphs,capped rows.
func WriteFig4CSV(w io.Writer, pts []Fig4Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ops", "premium_pct", "graphs", "capped"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.Itoa(p.N),
			fmt.Sprintf("%.4f", p.MeanPremiumPct),
			strconv.Itoa(p.Graphs),
			strconv.Itoa(p.Capped),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV writes size,heuristic_ms,ilp_ms,capped rows.
func WriteFig5CSV(w io.Writer, pts []Fig5Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ops", "heuristic_ms", "ilp_ms", "capped"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.Itoa(p.N),
			ms(p.Heuristic),
			ms(p.ILP),
			strconv.Itoa(p.ILPCapped),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV writes lambda_ratio,heuristic_ms,ilp_ms,capped rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lambda_ratio", "heuristic_ms", "ilp_ms", "capped"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			fmt.Sprintf("%.2f", 1+r.Relax),
			ms(r.Heuristic),
			ms(r.ILP),
			strconv.Itoa(r.ILPCapped),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}
