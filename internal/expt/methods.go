package expt

import (
	"context"
	"fmt"
	"io"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/descend"
	"repro/internal/portfolio"
	"repro/internal/tgff"
	"repro/internal/twostage"
)

// MethodColumns are the columns of the Methods sweep, in render order:
// the paper's heuristic, the two baselines, the simulated-annealing
// allocator, and the portfolio (the per-graph best of the other four,
// scored with the same winner-selection rule the registered portfolio
// solver uses).
var MethodColumns = []string{"dpalloc", "twostage", "descend", "anneal", "portfolio"}

// MethodsPoint is one (size, relaxation) cell of the Methods sweep: the
// mean functional-unit area per column over the batch, plus how often
// each concrete method won the portfolio race.
type MethodsPoint struct {
	N        int
	Relax    float64
	Graphs   int
	MeanArea map[string]float64
	Wins     map[string]int
}

// Methods runs the Fig. 3–5 style sweep with the post-paper backends as
// extra columns: for every graph each column allocates independently,
// and the portfolio column takes the least-area feasible result —
// quantifying what racing buys over any single method. annealMoves caps
// the annealer's proposal budget per graph (0 = the annealer default);
// the annealer seed derives from cfg.Seed plus the graph index, so the
// sweep is reproducible end to end.
func Methods(ctx context.Context, cfg Config, sizes []int, relaxes []float64, annealMoves int) ([]MethodsPoint, error) {
	cfg = cfg.withDefaults()
	var out []MethodsPoint
	for _, n := range sizes {
		graphs, err := tgff.Batch(n, cfg.Graphs, cfg.Seed, cfg.TGFF)
		if err != nil {
			return nil, err
		}
		for _, relax := range relaxes {
			p := MethodsPoint{
				N: n, Relax: relax,
				MeanArea: make(map[string]float64, len(MethodColumns)),
				Wins:     make(map[string]int),
			}
			sums := make(map[string]int64, len(MethodColumns))
			for gi, g := range graphs {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				lmin, err := g.MinMakespan(cfg.Lib)
				if err != nil {
					return nil, err
				}
				lambda := Lambda(lmin, relax)

				h, _, err := core.AllocateCtx(ctx, g, cfg.Lib, lambda, core.Options{})
				if err != nil {
					return nil, fmt.Errorf("methods dpalloc n=%d: %w", n, err)
				}
				ts, _, err := twostage.AllocateCtx(ctx, g, cfg.Lib, lambda)
				if err != nil {
					return nil, fmt.Errorf("methods twostage n=%d: %w", n, err)
				}
				de, err := descend.AllocateCtx(ctx, g, cfg.Lib, lambda)
				if err != nil {
					return nil, fmt.Errorf("methods descend n=%d: %w", n, err)
				}
				an, _, err := anneal.AllocateCtx(ctx, g, cfg.Lib, lambda, anneal.Options{
					Seed:  cfg.Seed + int64(gi),
					Moves: annealMoves,
				})
				if err != nil {
					return nil, fmt.Errorf("methods anneal n=%d: %w", n, err)
				}

				outs := []portfolio.Outcome{
					{Name: "dpalloc", Area: h.Area(cfg.Lib)},
					{Name: "twostage", Area: ts.Area(cfg.Lib)},
					{Name: "descend", Area: de.Area(cfg.Lib)},
					{Name: "anneal", Area: an.Area(cfg.Lib)},
				}
				for _, o := range outs {
					sums[o.Name] += o.Area
				}
				win := portfolio.Pick(outs)
				sums["portfolio"] += outs[win].Area
				p.Wins[outs[win].Name]++
				p.Graphs++
			}
			if p.Graphs > 0 {
				for _, col := range MethodColumns {
					p.MeanArea[col] = float64(sums[col]) / float64(p.Graphs)
				}
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// WriteMethods renders the sweep: one row per (size, relaxation) with
// the mean area per column, then the portfolio win tally.
func WriteMethods(w io.Writer, pts []MethodsPoint) {
	fmt.Fprintf(w, "Methods: mean FU area per allocator (portfolio = per-graph best)\n")
	fmt.Fprintf(w, "%6s %8s", "|O|", "λ/λmin")
	for _, col := range MethodColumns {
		fmt.Fprintf(w, " %10s", col)
	}
	fmt.Fprintf(w, "  wins\n")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %8.2f", p.N, 1+p.Relax)
		for _, col := range MethodColumns {
			fmt.Fprintf(w, " %10.1f", p.MeanArea[col])
		}
		fmt.Fprintf(w, " ")
		for _, col := range MethodColumns[:len(MethodColumns)-1] {
			if n := p.Wins[col]; n > 0 {
				fmt.Fprintf(w, " %s=%d", col, n)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteMethodsCSV renders the sweep for external plotting.
func WriteMethodsCSV(w io.Writer, pts []MethodsPoint) error {
	if _, err := fmt.Fprintf(w, "n,relax,graphs"); err != nil {
		return err
	}
	for _, col := range MethodColumns {
		if _, err := fmt.Fprintf(w, ",%s", col); err != nil {
			return err
		}
	}
	for _, col := range MethodColumns[:len(MethodColumns)-1] {
		if _, err := fmt.Fprintf(w, ",wins_%s", col); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%g,%d", p.N, p.Relax, p.Graphs); err != nil {
			return err
		}
		for _, col := range MethodColumns {
			if _, err := fmt.Fprintf(w, ",%g", p.MeanArea[col]); err != nil {
				return err
			}
		}
		for _, col := range MethodColumns[:len(MethodColumns)-1] {
			if _, err := fmt.Fprintf(w, ",%d", p.Wins[col]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
