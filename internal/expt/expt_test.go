package expt

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/tgff"
)

// Small configurations keep the suite fast; the full paper-scale sweep
// runs through cmd/experiments.
func smallCfg() Config {
	return Config{Graphs: 8, Seed: 500}
}

func TestLambda(t *testing.T) {
	cases := []struct {
		lmin  int
		relax float64
		want  int
	}{
		{10, 0, 10},
		{10, 0.15, 12}, // 1.5 rounds to 2
		{10, 0.3, 13},
		{7, 0.05, 7}, // 0.35 rounds to 0
		{20, 0.05, 21},
	}
	for _, c := range cases {
		if got := Lambda(c.lmin, c.relax); got != c.want {
			t.Errorf("Lambda(%d, %v) = %d, want %d", c.lmin, c.relax, got, c.want)
		}
	}
}

func TestFig3ShapeAndRender(t *testing.T) {
	pts, err := Fig3(context.Background(), smallCfg(), []int{4, 8}, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	// Penalty must never be negative on average... it can be slightly
	// negative per-graph if the heuristic loses, but the relaxed column
	// should dominate the tight column for the larger size.
	byKey := map[[2]float64]float64{}
	for _, p := range pts {
		byKey[[2]float64{float64(p.N), p.Relax}] = p.MeanPenaltyPct
		if p.Graphs == 0 {
			t.Fatalf("cell (%d, %v) used no graphs", p.N, p.Relax)
		}
	}
	if byKey[[2]float64{8, 0.3}] < byKey[[2]float64{8, 0}] {
		t.Errorf("penalty at +30%% (%.2f) below +0%% (%.2f) for n=8",
			byKey[[2]float64{8, 0.3}], byKey[[2]float64{8, 0}])
	}
	var buf bytes.Buffer
	WriteFig3(&buf, pts)
	if !strings.Contains(buf.String(), "Fig. 3") || !strings.Contains(buf.String(), "+30%") {
		t.Errorf("render:\n%s", buf.String())
	}
}

func TestFig4ShapeAndRender(t *testing.T) {
	pts, err := Fig4(context.Background(), smallCfg(), []int{1, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// Size 1: the heuristic is trivially optimal.
	if pts[0].MeanPremiumPct != 0 {
		t.Errorf("premium at n=1 is %.2f, want 0", pts[0].MeanPremiumPct)
	}
	for _, p := range pts {
		if p.MeanPremiumPct < 0 {
			t.Errorf("negative premium %.2f at n=%d (heuristic beat the optimum?)", p.MeanPremiumPct, p.N)
		}
	}
	var buf bytes.Buffer
	WriteFig4(&buf, pts)
	if !strings.Contains(buf.String(), "Fig. 4") {
		t.Errorf("render:\n%s", buf.String())
	}
}

func TestFig4RejectsOversize(t *testing.T) {
	if _, err := Fig4(context.Background(), smallCfg(), []int{40}, 0); err == nil {
		t.Fatal("oversize accepted")
	}
}

func TestFig5AndRender(t *testing.T) {
	cfg := smallCfg()
	cfg.Graphs = 4
	pts, err := Fig5(context.Background(), cfg, []int{3, 5}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Heuristic <= 0 || p.ILP <= 0 {
			t.Errorf("non-positive times at n=%d: %+v", p.N, p)
		}
	}
	var buf bytes.Buffer
	WriteFig5(&buf, pts, cfg.Graphs)
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Errorf("render:\n%s", buf.String())
	}
}

func TestTable2AndRender(t *testing.T) {
	cfg := smallCfg()
	cfg.Graphs = 3
	rows, err := Table2(context.Background(), cfg, 6, []float64{0, 0.15}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows, cfg.Graphs, 6)
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "1.15") {
		t.Errorf("render:\n%s", out)
	}
}

func TestCompareOrdering(t *testing.T) {
	// On every small graph: optimum ≤ heuristic ≤ ... and all verify.
	cfg := smallCfg()
	lib := cfg.withDefaults().Lib
	graphs := []int{2, 5, 7}
	for _, n := range graphs {
		gs, err := tgff.Batch(n, 6, cfg.Seed, cfg.TGFF)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range gs {
			lmin, err := g.MinMakespan(lib)
			if err != nil {
				t.Fatal(err)
			}
			lambda := Lambda(lmin, 0.2)
			res, err := Compare(g, lib, lambda)
			if err != nil {
				t.Fatal(err)
			}
			if res.Optimum == nil {
				t.Fatal("optimum missing for small graph")
			}
			oa := res.Optimum.Area(lib)
			ha := res.Heuristic.Area(lib)
			if oa > ha {
				t.Fatalf("n=%d: optimum %d > heuristic %d", n, oa, ha)
			}
			if err := res.Heuristic.Verify(g, lib, lambda); err != nil {
				t.Fatal(err)
			}
			if err := res.TwoStage.Verify(g, lib, lambda); err != nil {
				t.Fatal(err)
			}
			if err := res.Optimum.Verify(g, lib, lambda); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestMethodsSweep: the backend-comparison sweep runs, the portfolio
// column is the per-graph minimum (so its mean can never exceed any
// single column's mean), and win counts tally to the batch size.
func TestMethodsSweep(t *testing.T) {
	pts, err := Methods(context.Background(), Config{Graphs: 6, Seed: 11}, []int{6, 9}, []float64{0, 0.2}, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points for 2 sizes × 2 relaxations", len(pts))
	}
	for _, p := range pts {
		if p.Graphs != 6 {
			t.Fatalf("cell used %d graphs, want 6", p.Graphs)
		}
		for _, col := range MethodColumns[:len(MethodColumns)-1] {
			if p.MeanArea["portfolio"] > p.MeanArea[col]+1e-9 {
				t.Fatalf("n=%d relax=%.2f: portfolio mean %.1f exceeds %s mean %.1f",
					p.N, p.Relax, p.MeanArea["portfolio"], col, p.MeanArea[col])
			}
		}
		wins := 0
		for _, n := range p.Wins {
			wins += n
		}
		if wins != p.Graphs {
			t.Fatalf("win tally %d for %d graphs", wins, p.Graphs)
		}
	}

	var text, csv strings.Builder
	WriteMethods(&text, pts)
	if !strings.Contains(text.String(), "portfolio") {
		t.Fatal("renderer lost the portfolio column")
	}
	if err := WriteMethodsCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 5 {
		t.Fatalf("csv has %d lines, want header + 4", lines)
	}
}
