// Package expt is the benchmark harness reproducing the paper's
// evaluation (§3): Fig. 3 (area penalty of the two-stage approach [4]
// over the heuristic, against problem size and latency relaxation),
// Fig. 4 (area premium of the heuristic over the ILP optimum [5]),
// Fig. 5 (execution time scaling of heuristic vs ILP with problem size)
// and Table 2 (execution time scaling with the latency constraint).
//
// Workloads follow the paper: batches of random TGFF-style sequencing
// graphs per problem size, each allocated under latency constraints
// derived from that graph's λ_min relaxed by 0–30%. Quantities are means
// over the batch. Absolute numbers differ from the paper's 2001 setup
// (Pentium III, lp_solve); the reproduction targets the shapes: penalty
// growing with slack and size, premium within ~0–16%, polynomial vs
// exponential time, ILP time exploding with λ while the heuristic's does
// not.
package expt

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/exact"
	"repro/internal/ilp"
	"repro/internal/model"
	"repro/internal/regalloc"
	"repro/internal/tgff"
	"repro/internal/twostage"
)

// Config is shared by all experiments.
type Config struct {
	Graphs int         // graphs per configuration (paper: 200)
	Seed   int64       // base seed; graph i uses Seed+i
	TGFF   tgff.Config // generation parameters (N is overridden per size)
	Lib    *model.Library
	// FullArea scores datapaths by full register-transfer area
	// (functional units + registers + muxes, via internal/regalloc)
	// instead of the paper's functional-unit-only model. Fig. 3 only.
	FullArea bool
}

func (c Config) withDefaults() Config {
	if c.Graphs == 0 {
		c.Graphs = 200
	}
	if c.Lib == nil {
		c.Lib = model.Default()
	}
	return c
}

// Lambda derives the latency constraint for a relaxation fraction
// (e.g. 0.15 for 15%) from λ_min, rounding to the nearest cycle.
func Lambda(lmin int, relax float64) int {
	return lmin + int(math.Round(float64(lmin)*relax))
}

// ---- Fig. 3 ----

// Fig3Point is the mean area penalty of the two-stage baseline over the
// heuristic for one (size, relaxation) cell.
type Fig3Point struct {
	N              int
	Relax          float64
	MeanPenaltyPct float64
	Graphs         int
}

// Fig3 sweeps problem sizes × latency relaxations. ctx cancels the
// sweep between (and inside) individual allocations.
func Fig3(ctx context.Context, cfg Config, sizes []int, relaxes []float64) ([]Fig3Point, error) {
	cfg = cfg.withDefaults()
	var out []Fig3Point
	for _, n := range sizes {
		graphs, err := tgff.Batch(n, cfg.Graphs, cfg.Seed, cfg.TGFF)
		if err != nil {
			return nil, err
		}
		for _, relax := range relaxes {
			var sum float64
			used := 0
			for _, g := range graphs {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				lmin, err := g.MinMakespan(cfg.Lib)
				if err != nil {
					return nil, err
				}
				lambda := Lambda(lmin, relax)
				h, _, err := core.AllocateCtx(ctx, g, cfg.Lib, lambda, core.Options{})
				if err != nil {
					return nil, fmt.Errorf("fig3 heuristic n=%d: %w", n, err)
				}
				ts, _, err := twostage.Allocate(g, cfg.Lib, lambda)
				if err != nil {
					return nil, fmt.Errorf("fig3 twostage n=%d: %w", n, err)
				}
				ha, ta := h.Area(cfg.Lib), ts.Area(cfg.Lib)
				if cfg.FullArea {
					hp, err := regalloc.Build(g, cfg.Lib, h, regalloc.Options{})
					if err != nil {
						return nil, fmt.Errorf("fig3 regalloc n=%d: %w", n, err)
					}
					tp, err := regalloc.Build(g, cfg.Lib, ts, regalloc.Options{})
					if err != nil {
						return nil, fmt.Errorf("fig3 regalloc n=%d: %w", n, err)
					}
					ha, ta = hp.TotalArea(), tp.TotalArea()
				}
				if ha <= 0 {
					continue
				}
				sum += 100 * float64(ta-ha) / float64(ha)
				used++
			}
			p := Fig3Point{N: n, Relax: relax, Graphs: used}
			if used > 0 {
				p.MeanPenaltyPct = sum / float64(used)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// ---- Fig. 4 ----

// Fig4Point is the mean area premium of the heuristic over the optimum
// at λ = λ_min for one problem size.
type Fig4Point struct {
	N              int
	MeanPremiumPct float64
	Graphs         int // graphs with a proven optimum
	Capped         int // graphs where the optimum search was capped (excluded)
}

// Fig4 compares the heuristic against the exact optimum at minimum
// latency. exactNodeLimit caps the per-graph search (0 = unlimited);
// capped graphs are excluded from the mean and counted.
func Fig4(ctx context.Context, cfg Config, sizes []int, exactNodeLimit int64) ([]Fig4Point, error) {
	cfg = cfg.withDefaults()
	var out []Fig4Point
	for _, n := range sizes {
		if n > exact.MaxOps {
			return nil, fmt.Errorf("fig4: size %d exceeds exact.MaxOps=%d", n, exact.MaxOps)
		}
		graphs, err := tgff.Batch(n, cfg.Graphs, cfg.Seed, cfg.TGFF)
		if err != nil {
			return nil, err
		}
		p := Fig4Point{N: n}
		var sum float64
		for _, g := range graphs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lmin, err := g.MinMakespan(cfg.Lib)
			if err != nil {
				return nil, err
			}
			h, _, err := core.AllocateCtx(ctx, g, cfg.Lib, lmin, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("fig4 heuristic n=%d: %w", n, err)
			}
			opt, st, err := exact.AllocateCtx(ctx, g, cfg.Lib, lmin, exact.Options{
				UpperBound: h.Area(cfg.Lib),
				NodeLimit:  exactNodeLimit,
			})
			if err != nil {
				return nil, fmt.Errorf("fig4 exact n=%d: %w", n, err)
			}
			if st.Capped {
				p.Capped++
				continue
			}
			oa := opt.Area(cfg.Lib)
			if oa <= 0 {
				continue
			}
			sum += 100 * float64(h.Area(cfg.Lib)-oa) / float64(oa)
			p.Graphs++
		}
		if p.Graphs > 0 {
			p.MeanPremiumPct = sum / float64(p.Graphs)
		}
		out = append(out, p)
	}
	return out, nil
}

// ---- Fig. 5 ----

// Fig5Point is the total execution time over the batch for one size.
type Fig5Point struct {
	N         int
	Heuristic time.Duration
	ILP       time.Duration
	ILPCapped int // graphs where the ILP hit its per-graph time limit
}

// Fig5 measures execution time scaling at λ = λ_min. ilpLimit caps each
// individual ILP solve (0 applies the ILP default cap; negative
// disables it).
func Fig5(ctx context.Context, cfg Config, sizes []int, ilpLimit time.Duration) ([]Fig5Point, error) {
	cfg = cfg.withDefaults()
	var out []Fig5Point
	for _, n := range sizes {
		graphs, err := tgff.Batch(n, cfg.Graphs, cfg.Seed, cfg.TGFF)
		if err != nil {
			return nil, err
		}
		p := Fig5Point{N: n}
		for _, g := range graphs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lmin, err := g.MinMakespan(cfg.Lib)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			h, _, err := core.AllocateCtx(ctx, g, cfg.Lib, lmin, core.Options{})
			p.Heuristic += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("fig5 heuristic n=%d: %w", n, err)
			}
			t0 = time.Now()
			r, err := ilp.SolveCtx(ctx, g, cfg.Lib, lmin, ilp.Options{TimeLimit: ilpLimit, Incumbent: h})
			p.ILP += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("fig5 ilp n=%d: %w", n, err)
			}
			if r.TimedOut {
				p.ILPCapped++
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// ---- Table 2 ----

// Table2Row is the total execution time over the batch of 9-operation
// graphs for one λ/λ_min ratio.
type Table2Row struct {
	Relax     float64
	Heuristic time.Duration
	ILP       time.Duration
	ILPCapped int
}

// Table2 measures execution-time scaling with the latency constraint on
// graphs of the paper's size (9 operations).
func Table2(ctx context.Context, cfg Config, size int, relaxes []float64, ilpLimit time.Duration) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	graphs, err := tgff.Batch(size, cfg.Graphs, cfg.Seed, cfg.TGFF)
	if err != nil {
		return nil, err
	}
	var out []Table2Row
	for _, relax := range relaxes {
		row := Table2Row{Relax: relax}
		for _, g := range graphs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lmin, err := g.MinMakespan(cfg.Lib)
			if err != nil {
				return nil, err
			}
			lambda := Lambda(lmin, relax)
			t0 := time.Now()
			h, _, err := core.AllocateCtx(ctx, g, cfg.Lib, lambda, core.Options{})
			row.Heuristic += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("table2 heuristic: %w", err)
			}
			t0 = time.Now()
			r, err := ilp.SolveCtx(ctx, g, cfg.Lib, lambda, ilp.Options{TimeLimit: ilpLimit, Incumbent: h})
			row.ILP += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("table2 ilp: %w", err)
			}
			if r.TimedOut {
				row.ILPCapped++
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// ---- rendering ----

// WriteFig3 renders the Fig. 3 sweep as a table: one row per size, one
// column per relaxation.
func WriteFig3(w io.Writer, pts []Fig3Point) {
	if len(pts) == 0 {
		return
	}
	var relaxes []float64
	seen := map[float64]bool{}
	for _, p := range pts {
		if !seen[p.Relax] {
			seen[p.Relax] = true
			relaxes = append(relaxes, p.Relax)
		}
	}
	fmt.Fprintf(w, "Fig. 3: mean area penalty %% of two-stage [4] over heuristic\n")
	fmt.Fprintf(w, "%6s", "|O|")
	for _, r := range relaxes {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("+%.0f%%", r*100))
	}
	fmt.Fprintln(w)
	var lastN int = -1
	for _, p := range pts {
		if p.N != lastN {
			if lastN >= 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "%6d", p.N)
			lastN = p.N
		}
		fmt.Fprintf(w, " %8.2f", p.MeanPenaltyPct)
	}
	fmt.Fprintln(w)
}

// WriteFig4 renders the Fig. 4 series.
func WriteFig4(w io.Writer, pts []Fig4Point) {
	fmt.Fprintf(w, "Fig. 4: mean area premium %% of heuristic over optimum at λ_min\n")
	fmt.Fprintf(w, "%6s %12s %8s %8s\n", "|O|", "premium %", "graphs", "capped")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %12.2f %8d %8d\n", p.N, p.MeanPremiumPct, p.Graphs, p.Capped)
	}
}

// WriteFig5 renders the Fig. 5 series.
func WriteFig5(w io.Writer, pts []Fig5Point, graphs int) {
	fmt.Fprintf(w, "Fig. 5: execution time for %d graphs per size (λ = λ_min)\n", graphs)
	fmt.Fprintf(w, "%6s %14s %14s %8s\n", "|O|", "heuristic", "ILP", "capped")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %14s %14s %8d\n", p.N, round(p.Heuristic), round(p.ILP), p.ILPCapped)
	}
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, rows []Table2Row, graphs, size int) {
	fmt.Fprintf(w, "Table 2: execution time for %d %d-op graphs vs λ/λ_min\n", graphs, size)
	fmt.Fprintf(w, "%10s %14s %14s %8s\n", "λ/λ_min", "heuristic", "ILP", "capped")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.2f %14s %14s %8d\n", 1+r.Relax, round(r.Heuristic), round(r.ILP), r.ILPCapped)
	}
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }

// CompareAll allocates one graph with every method at one λ and reports
// the areas — the building block of the quickstart and the integration
// tests.
type CompareResult struct {
	Heuristic *datapath.Datapath
	TwoStage  *datapath.Datapath
	Optimum   *datapath.Datapath // nil when the graph exceeds exact.MaxOps
}

// Compare runs heuristic, two-stage, and (for small graphs) the exact
// optimum on one graph.
func Compare(g *dfg.Graph, lib *model.Library, lambda int) (*CompareResult, error) {
	h, _, err := core.Allocate(g, lib, lambda, core.Options{})
	if err != nil {
		return nil, err
	}
	ts, _, err := twostage.Allocate(g, lib, lambda)
	if err != nil {
		return nil, err
	}
	res := &CompareResult{Heuristic: h, TwoStage: ts}
	if g.N() <= exact.MaxOps {
		opt, _, err := exact.Allocate(g, lib, lambda, exact.Options{UpperBound: h.Area(lib)})
		if err != nil {
			return nil, err
		}
		res.Optimum = opt
	}
	return res, nil
}
