package wcg

import (
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
)

// fig2Graph builds the paper's Fig. 2 example: two multiplications
// (25x25 and 20x18) in sequence.
func fig2Graph(t *testing.T) (*dfg.Graph, *Graph) {
	t.Helper()
	d := dfg.New()
	o1 := d.AddOp("o1", model.Mul, model.Sig(25, 25))
	o2 := d.AddOp("o2", model.Mul, model.Sig(20, 18))
	if err := d.AddDep(o1, o2); err != nil {
		t.Fatal(err)
	}
	g, err := Build(d, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	return d, g
}

func TestBuildFig2(t *testing.T) {
	_, g := fig2Graph(t)
	// Kinds: mul 20x18, mul 25x25, and the join mul 25x25 (same) —
	// join(25x25, 20x18) = 25x25, so exactly two kinds.
	if len(g.Kinds) != 2 {
		t.Fatalf("kinds = %v", g.Kinds)
	}
	// o1 (25x25) is only compatible with 25x25; o2 with both.
	if n := len(g.CompatKinds(0)); n != 1 {
		t.Errorf("o1 compatible with %d kinds", n)
	}
	if n := len(g.CompatKinds(1)); n != 2 {
		t.Errorf("o2 compatible with %d kinds", n)
	}
	// Latencies per the SONIC formula.
	if g.UpperLatency(0) != 7 || g.MinLatency(0) != 7 {
		t.Errorf("o1 latencies: upper %d min %d", g.UpperLatency(0), g.MinLatency(0))
	}
	if g.UpperLatency(1) != 7 || g.MinLatency(1) != 5 {
		t.Errorf("o2 latencies: upper %d min %d", g.UpperLatency(1), g.MinLatency(1))
	}
}

func TestCompatOpsAndCompatible(t *testing.T) {
	_, g := fig2Graph(t)
	var big int = -1
	for ki, k := range g.Kinds {
		if k.Sig == model.Sig(25, 25) {
			big = ki
		}
	}
	if big < 0 {
		t.Fatal("25x25 kind missing")
	}
	ops := g.CompatOps(big)
	if len(ops) != 2 {
		t.Fatalf("O(25x25) = %v", ops)
	}
	if !g.Compatible(1, big) {
		t.Error("o2 must be compatible with 25x25")
	}
}

func TestDeleteMaxLatencyEdges(t *testing.T) {
	_, g := fig2Graph(t)
	if g.Reducible(0) {
		t.Error("o1 has a single latency level; must not be reducible")
	}
	if n := g.DeleteMaxLatencyEdges(0); n != 0 {
		t.Errorf("deletion on irreducible op deleted %d", n)
	}
	if !g.Reducible(1) {
		t.Fatal("o2 must be reducible")
	}
	if n := g.DeleteMaxLatencyEdges(1); n != 1 {
		t.Errorf("deleted %d edges, want 1", n)
	}
	if g.UpperLatency(1) != 5 {
		t.Errorf("upper latency after refinement = %d, want 5", g.UpperLatency(1))
	}
	if len(g.CompatKinds(1)) != 1 {
		t.Errorf("o2 has %d kinds left", len(g.CompatKinds(1)))
	}
	// Now irreducible; a second deletion must refuse.
	if n := g.DeleteMaxLatencyEdges(1); n != 0 {
		t.Errorf("second deletion removed %d edges", n)
	}
}

func TestUpperLatenciesFunc(t *testing.T) {
	_, g := fig2Graph(t)
	lat := g.UpperLatencies()
	if lat(0) != 7 || lat(1) != 7 {
		t.Errorf("upper latencies: %d %d", lat(0), lat(1))
	}
}

func TestCloneIndependence(t *testing.T) {
	_, g := fig2Graph(t)
	c := g.Clone()
	c.DeleteMaxLatencyEdges(1)
	if len(g.CompatKinds(1)) != 2 {
		t.Error("clone deletion mutated original")
	}
	if g.NumHEdges() != 3 || c.NumHEdges() != 2 {
		t.Errorf("edge counts: orig %d clone %d", g.NumHEdges(), c.NumHEdges())
	}
}

func TestBuildWithKindsUncovered(t *testing.T) {
	d := dfg.New()
	d.AddOp("o", model.Mul, model.Sig(8, 8))
	_, err := BuildWithKinds(d, model.Default(), []model.Kind{{Class: model.Add, Sig: model.AddSig(8)}})
	if err == nil {
		t.Error("uncovered operation accepted")
	}
}

func TestIntervalRelations(t *testing.T) {
	a := Interval{Op: 0, Start: 0, End: 2}
	b := Interval{Op: 1, Start: 2, End: 4}
	c := Interval{Op: 2, Start: 1, End: 3}
	if !a.Before(b) || b.Before(a) {
		t.Error("Before broken")
	}
	if a.Overlaps(b) {
		t.Error("adjacent intervals must not overlap")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Error("Overlaps must be symmetric and true for overlapping")
	}
}

func TestMaxChainBasic(t *testing.T) {
	ivs := []Interval{
		{Op: 0, Start: 0, End: 3},
		{Op: 1, Start: 1, End: 2},
		{Op: 2, Start: 2, End: 5},
		{Op: 3, Start: 5, End: 6},
	}
	chain := MaxChain(ivs)
	if len(chain) != 3 { // 1, 2, 3
		t.Fatalf("chain = %v", chain)
	}
	if !IsChain(chain) {
		t.Error("MaxChain result is not a chain")
	}
}

func TestMaxChainEmpty(t *testing.T) {
	if MaxChain(nil) != nil {
		t.Error("MaxChain(nil) != nil")
	}
	if !IsChain(nil) {
		t.Error("empty set must be a chain")
	}
}

// bruteMaxChain finds the true maximum pairwise-disjoint subset by
// enumeration, for cross-checking the greedy.
func bruteMaxChain(ivs []Interval) int {
	best := 0
	n := len(ivs)
	for mask := 0; mask < 1<<n; mask++ {
		var sel []Interval
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sel = append(sel, ivs[i])
			}
		}
		ok := true
		for i := 0; i < len(sel) && ok; i++ {
			for j := i + 1; j < len(sel) && ok; j++ {
				if sel[i].Overlaps(sel[j]) {
					ok = false
				}
			}
		}
		if ok && len(sel) > best {
			best = len(sel)
		}
	}
	return best
}

func TestMaxChainMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rnd.Intn(12)
		ivs := make([]Interval, n)
		for i := range ivs {
			s := rnd.Intn(10)
			ivs[i] = Interval{Op: dfg.OpID(i), Start: s, End: s + 1 + rnd.Intn(5)}
		}
		want := bruteMaxChain(ivs)
		got := MaxChain(append([]Interval(nil), ivs...))
		if len(got) != want {
			t.Fatalf("greedy chain %d, brute force %d, intervals %v", len(got), want, ivs)
		}
		if !IsChain(got) {
			t.Fatalf("result not a chain: %v", got)
		}
	}
}

// TestTransitiveOrientation checks the paper's §2.1 claim that C is a
// transitive orientation: if (a,b) and (b,c) are C edges then so is (a,c).
func TestTransitiveOrientation(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		var ivs []Interval
		for i := 0; i < 8; i++ {
			s := rnd.Intn(12)
			ivs = append(ivs, Interval{Op: dfg.OpID(i), Start: s, End: s + 1 + rnd.Intn(6)})
		}
		for _, a := range ivs {
			for _, b := range ivs {
				for _, c := range ivs {
					if a.Before(b) && b.Before(c) && !a.Before(c) {
						t.Fatalf("orientation not transitive: %v %v %v", a, b, c)
					}
				}
			}
		}
	}
}

func TestIsChainDetectsOverlap(t *testing.T) {
	ivs := []Interval{{Op: 0, Start: 0, End: 3}, {Op: 1, Start: 2, End: 4}}
	if IsChain(ivs) {
		t.Error("overlapping intervals reported as chain")
	}
}
