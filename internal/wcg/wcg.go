// Package wcg implements the wordlength compatibility graph G(V, E) of the
// paper (§2.1): V = O ∪ R partitions into operations and
// resource-wordlength kinds; E = C ∪ H partitions into directed
// time-compatibility edges between operations (a transitive orientation
// derived from the schedule) and undirected operation–kind edges recording
// which kinds can currently execute which operations.
//
// H edges are the mutable state of Algorithm DPAlloc: refinement deletes
// {o, r} edges to shrink the latency upper bound L_o of an operation.
// C edges are never stored; they are implied by reserved execution
// intervals [start(o), start(o)+L_o), which form an interval order, so the
// orientation is transitive by construction (Golumbic [11]) and maximum
// cliques of a kind's compatibility subgraph are maximum sets of pairwise
// disjoint intervals, found in linear time after sorting.
//
// The H edges are maintained incrementally: bit sets index both sides of
// the bipartite adjacency (op→kinds and kind→ops), the per-operation
// latency bounds L_o and min ℓ are cached and repaired on deletion, and
// the per-kind operation lists handed to schedulers are rebuilt lazily
// only for kinds whose edge set actually changed. Membership tests and
// edge counts are O(1) instead of adjacency-list scans — the difference
// between 100- and 1000-node graphs being tractable.
package wcg

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dfg"
	"repro/internal/model"
)

// Graph is a wordlength compatibility graph bound to one sequencing graph
// and one extracted kind set.
type Graph struct {
	D     *dfg.Graph
	Lib   *model.Library
	Kinds []model.Kind

	// h[o] lists indices into Kinds compatible with operation o, in
	// extraction order (area ascending within class). Invariant: never
	// empty for a valid graph.
	h [][]int
	// hBits[o] mirrors h[o] as a bit set over kind indices.
	hBits []bitset.Set
	// opBits[k] is O(r) as a bit set over operation IDs.
	opBits []bitset.Set
	// ops[k] caches O(r) in ID order; opsDirty[k] marks it stale after
	// an edge deletion touching kind k. opCount[k] = |O(r)| is
	// maintained incrementally so counting never needs a popcount.
	ops      [][]dfg.OpID
	opsDirty []bool
	opCount  []int
	// lat[k] caches Lib.Latency(Kinds[k]).
	lat []int
	// upper[o] and min[o] cache L_o and min ℓ over o's current kinds.
	upper []int
	min   []int
	// edges counts the H edges remaining.
	edges int
	// topo memoizes D.TopoOrder(): D is immutable for the lifetime of
	// the compatibility graph, and the scheduler asks every iteration.
	topo []dfg.OpID
}

// TopoOrder returns a topological order of the bound sequencing graph,
// memoized across calls. The slice must not be modified.
func (g *Graph) TopoOrder() ([]dfg.OpID, error) {
	if g.topo == nil {
		order, err := g.D.TopoOrder()
		if err != nil {
			return nil, err
		}
		g.topo = order
	}
	return g.topo, nil
}

// Build constructs the initial compatibility graph: kinds extracted from
// the operation set with join closure, and an H edge {o, r} exactly when
// kind r covers operation o ("of sufficient wordlength ... and of the
// same type").
func Build(d *dfg.Graph, lib *model.Library) (*Graph, error) {
	kinds := model.ExtractKinds(d.Specs(), lib)
	return BuildWithKinds(d, lib, kinds)
}

// BuildWithKinds constructs the compatibility graph over a caller-supplied
// kind set (used by the no-closure ablation). Every operation must be
// covered by at least one kind.
func BuildWithKinds(d *dfg.Graph, lib *model.Library, kinds []model.Kind) (*Graph, error) {
	g := &Graph{D: d, Lib: lib, Kinds: kinds}
	g.lat = make([]int, len(kinds))
	for i, k := range kinds {
		g.lat[i] = lib.Latency(k)
		if g.lat[i] < 1 {
			return nil, fmt.Errorf("wcg: kind %v has non-positive latency", k)
		}
	}
	n := d.N()
	g.h = make([][]int, n)
	g.hBits = make([]bitset.Set, n)
	g.opBits = make([]bitset.Set, len(kinds))
	for ki := range kinds {
		g.opBits[ki] = bitset.New(n)
	}
	g.ops = make([][]dfg.OpID, len(kinds))
	g.opsDirty = make([]bool, len(kinds))
	g.opCount = make([]int, len(kinds))
	for ki := range kinds {
		g.opsDirty[ki] = true
	}
	g.upper = make([]int, n)
	g.min = make([]int, n)
	for _, o := range d.Ops() {
		g.hBits[o.ID] = bitset.New(len(kinds))
		for ki, k := range kinds {
			if k.Covers(o.Spec.Type, o.Spec.Sig) {
				g.h[o.ID] = append(g.h[o.ID], ki)
				g.hBits[o.ID].Add(ki)
				g.opBits[ki].Add(int(o.ID))
				g.opCount[ki]++
				g.edges++
			}
		}
		if len(g.h[o.ID]) == 0 {
			return nil, fmt.Errorf("wcg: operation %d (%v) has no covering kind", o.ID, o.Spec)
		}
		g.recomputeBounds(o.ID)
	}
	return g, nil
}

// recomputeBounds repairs the cached latency bounds of o from its current
// kind list.
func (g *Graph) recomputeBounds(o dfg.OpID) {
	lo, hi := g.lat[g.h[o][0]], g.lat[g.h[o][0]]
	for _, ki := range g.h[o][1:] {
		if l := g.lat[ki]; l < lo {
			lo = l
		} else if l > hi {
			hi = l
		}
	}
	g.min[o], g.upper[o] = lo, hi
}

// KindLatency returns the cached latency ℓ(r) of kind index k.
func (g *Graph) KindLatency(k int) int { return g.lat[k] }

// CompatKinds returns the kind indices currently compatible with o
// (the H edges of o). The slice must not be modified.
func (g *Graph) CompatKinds(o dfg.OpID) []int { return g.h[o] }

// Compatible reports whether the H edge {o, kind k} is present.
func (g *Graph) Compatible(o dfg.OpID, k int) bool { return g.hBits[o].Has(k) }

// CompatOps returns O(r): the operations with an H edge to kind index k,
// in ID order. The slice must not be modified; it stays valid until the
// next deletion touching k.
func (g *Graph) CompatOps(k int) []dfg.OpID {
	if g.opsDirty[k] {
		ops := g.ops[k][:0]
		g.opBits[k].ForEach(func(i int) { ops = append(ops, dfg.OpID(i)) })
		g.ops[k] = ops
		g.opsDirty[k] = false
	}
	return g.ops[k]
}

// CompatOpBits returns O(r) as a bit set over operation IDs. The set must
// not be modified.
func (g *Graph) CompatOpBits(k int) bitset.Set { return g.opBits[k] }

// CompatOpCount returns |O(r)|, maintained incrementally across edge
// deletions.
func (g *Graph) CompatOpCount(k int) int { return g.opCount[k] }

// UpperLatency returns L_o: the largest latency among the kinds currently
// compatible with o. This is the latency upper bound the scheduler
// reserves so that any subsequent binding never violates the schedule.
func (g *Graph) UpperLatency(o dfg.OpID) int { return g.upper[o] }

// MinLatency returns the smallest latency among the kinds currently
// compatible with o.
func (g *Graph) MinLatency(o dfg.OpID) int { return g.min[o] }

// UpperLatSlice returns L_o for every operation as a slice indexed by
// operation ID, for indexed access in scheduler hot loops. The slice is
// the graph's internal state: callers must not modify it and must not
// retain it across refinement steps.
func (g *Graph) UpperLatSlice() []int { return g.upper }

// UpperLatencies returns L_o for every operation as a dfg.Latencies.
func (g *Graph) UpperLatencies() dfg.Latencies {
	ls := append([]int(nil), g.upper...)
	return func(id dfg.OpID) int { return ls[id] }
}

// Reducible reports whether deleting o's maximum-latency H edges would
// strictly reduce L_o while leaving at least one edge: i.e. o has
// compatible kinds at two or more distinct latencies.
func (g *Graph) Reducible(o dfg.OpID) bool { return g.min[o] < g.upper[o] }

// DeleteMaxLatencyEdges removes every H edge {o, r} with ℓ(r) == L_o
// (the refinement step of §2.4) and returns the number of edges deleted.
// It refuses to act, returning 0, when o is not Reducible, so an
// operation always keeps at least one compatible kind.
func (g *Graph) DeleteMaxLatencyEdges(o dfg.OpID) int {
	if !g.Reducible(o) {
		return 0
	}
	lmax := g.upper[o]
	kept := g.h[o][:0]
	deleted := 0
	for _, ki := range g.h[o] {
		if g.lat[ki] == lmax {
			deleted++
			g.hBits[o].Remove(ki)
			g.opBits[ki].Remove(int(o))
			g.opCount[ki]--
			g.opsDirty[ki] = true
		} else {
			kept = append(kept, ki)
		}
	}
	g.h[o] = kept
	g.edges -= deleted
	// Deleted edges all carried the maximum latency and Reducible
	// guaranteed a strictly smaller one survives, so min is unchanged.
	g.recomputeBounds(o)
	return deleted
}

// FullyRefine drives the graph to the refinement fixpoint: every
// operation keeps exactly its minimum-latency kinds. Deletions are
// per-operation independent, so the fixpoint is unique — it is the state
// any sequence of DeleteMaxLatencyEdges calls converges to once no
// operation is Reducible. Returns the number of edges deleted.
func (g *Graph) FullyRefine() int {
	deleted := 0
	for o := 0; o < g.D.N(); o++ {
		for g.Reducible(dfg.OpID(o)) {
			deleted += g.DeleteMaxLatencyEdges(dfg.OpID(o))
		}
	}
	return deleted
}

// NumHEdges returns the total number of H edges remaining.
func (g *Graph) NumHEdges() int { return g.edges }

// Clone returns a deep copy sharing the immutable sequencing graph,
// library and kind set but with independent H edges.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		D: g.D, Lib: g.Lib, Kinds: g.Kinds, lat: g.lat,
		upper: append([]int(nil), g.upper...),
		min:   append([]int(nil), g.min...),
		edges: g.edges,
		topo:  g.topo,
	}
	c.h = make([][]int, len(g.h))
	c.hBits = make([]bitset.Set, len(g.hBits))
	for i := range g.h {
		c.h[i] = append([]int(nil), g.h[i]...)
		c.hBits[i] = g.hBits[i].Clone()
	}
	c.opBits = make([]bitset.Set, len(g.opBits))
	c.ops = make([][]dfg.OpID, len(g.opBits))
	c.opsDirty = make([]bool, len(g.opBits))
	c.opCount = append([]int(nil), g.opCount...)
	for k := range g.opBits {
		c.opBits[k] = g.opBits[k].Clone()
		c.opsDirty[k] = true
	}
	return c
}

// Interval is a reserved execution interval [Start, End) of an operation.
type Interval struct {
	Op    dfg.OpID
	Start int
	End   int
}

// Before reports the C edge (a, b): a is scheduled to complete before b
// starts.
func (a Interval) Before(b Interval) bool { return a.End <= b.Start }

// Overlaps reports whether the two intervals share any control step, i.e.
// neither C edge direction exists between them.
func (a Interval) Overlaps(b Interval) bool { return !a.Before(b) && !b.Before(a) }

// MaxChain returns a maximum-cardinality subset of the intervals that is
// pairwise disjoint — a maximum clique of the transitively oriented
// subgraph G'(O, C) induced by the given operations. For interval orders
// this is the classic activity-selection problem: greedily taking the
// earliest finishing compatible interval is optimal and runs in
// O(n log n). The input slice is reordered in place.
func MaxChain(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sortIntervals(ivs)
	chain := ivs[:1:1]
	for _, iv := range ivs[1:] {
		if chain[len(chain)-1].Before(iv) {
			chain = append(chain, iv)
		}
	}
	return chain
}

// IsChain reports whether the intervals are pairwise disjoint, i.e. form a
// clique of G'(O, C). O(n log n); the input slice is reordered in place.
func IsChain(ivs []Interval) bool {
	sortIntervals(ivs)
	for i := 1; i < len(ivs); i++ {
		if !ivs[i-1].Before(ivs[i]) {
			return false
		}
	}
	return true
}

// sortIntervals orders by end time, breaking ties by start then op ID, so
// both MaxChain and IsChain are deterministic.
func sortIntervals(ivs []Interval) {
	if sort.SliceIsSorted(ivs, func(i, j int) bool { return lessInterval(ivs[i], ivs[j]) }) {
		return
	}
	sort.Slice(ivs, func(i, j int) bool { return lessInterval(ivs[i], ivs[j]) })
}

func lessInterval(a, b Interval) bool {
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Op < b.Op
}
