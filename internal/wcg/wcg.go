// Package wcg implements the wordlength compatibility graph G(V, E) of the
// paper (§2.1): V = O ∪ R partitions into operations and
// resource-wordlength kinds; E = C ∪ H partitions into directed
// time-compatibility edges between operations (a transitive orientation
// derived from the schedule) and undirected operation–kind edges recording
// which kinds can currently execute which operations.
//
// H edges are the mutable state of Algorithm DPAlloc: refinement deletes
// {o, r} edges to shrink the latency upper bound L_o of an operation.
// C edges are never stored; they are implied by reserved execution
// intervals [start(o), start(o)+L_o), which form an interval order, so the
// orientation is transitive by construction (Golumbic [11]) and maximum
// cliques of a kind's compatibility subgraph are maximum sets of pairwise
// disjoint intervals, found in linear time after sorting.
package wcg

import (
	"fmt"
	"math"

	"repro/internal/dfg"
	"repro/internal/model"
)

// Graph is a wordlength compatibility graph bound to one sequencing graph
// and one extracted kind set.
type Graph struct {
	D     *dfg.Graph
	Lib   *model.Library
	Kinds []model.Kind

	// h[o] lists indices into Kinds compatible with operation o, in
	// extraction order (area ascending within class). Invariant: never
	// empty for a valid graph.
	h [][]int
	// lat[k] caches Lib.Latency(Kinds[k]).
	lat []int
}

// Build constructs the initial compatibility graph: kinds extracted from
// the operation set with join closure, and an H edge {o, r} exactly when
// kind r covers operation o ("of sufficient wordlength ... and of the
// same type").
func Build(d *dfg.Graph, lib *model.Library) (*Graph, error) {
	kinds := model.ExtractKinds(d.Specs(), lib)
	return BuildWithKinds(d, lib, kinds)
}

// BuildWithKinds constructs the compatibility graph over a caller-supplied
// kind set (used by the no-closure ablation). Every operation must be
// covered by at least one kind.
func BuildWithKinds(d *dfg.Graph, lib *model.Library, kinds []model.Kind) (*Graph, error) {
	g := &Graph{D: d, Lib: lib, Kinds: kinds}
	g.lat = make([]int, len(kinds))
	for i, k := range kinds {
		g.lat[i] = lib.Latency(k)
		if g.lat[i] < 1 {
			return nil, fmt.Errorf("wcg: kind %v has non-positive latency", k)
		}
	}
	g.h = make([][]int, d.N())
	for _, o := range d.Ops() {
		for ki, k := range kinds {
			if k.Covers(o.Spec.Type, o.Spec.Sig) {
				g.h[o.ID] = append(g.h[o.ID], ki)
			}
		}
		if len(g.h[o.ID]) == 0 {
			return nil, fmt.Errorf("wcg: operation %d (%v) has no covering kind", o.ID, o.Spec)
		}
	}
	return g, nil
}

// KindLatency returns the cached latency ℓ(r) of kind index k.
func (g *Graph) KindLatency(k int) int { return g.lat[k] }

// CompatKinds returns the kind indices currently compatible with o
// (the H edges of o). The slice must not be modified.
func (g *Graph) CompatKinds(o dfg.OpID) []int { return g.h[o] }

// Compatible reports whether the H edge {o, kind k} is present.
func (g *Graph) Compatible(o dfg.OpID, k int) bool {
	for _, ki := range g.h[o] {
		if ki == k {
			return true
		}
	}
	return false
}

// CompatOps returns O(r): the operations with an H edge to kind index k,
// in ID order.
func (g *Graph) CompatOps(k int) []dfg.OpID {
	var ops []dfg.OpID
	for o := range g.h {
		if g.Compatible(dfg.OpID(o), k) {
			ops = append(ops, dfg.OpID(o))
		}
	}
	return ops
}

// UpperLatency returns L_o: the largest latency among the kinds currently
// compatible with o. This is the latency upper bound the scheduler
// reserves so that any subsequent binding never violates the schedule.
func (g *Graph) UpperLatency(o dfg.OpID) int {
	m := 0
	for _, ki := range g.h[o] {
		if g.lat[ki] > m {
			m = g.lat[ki]
		}
	}
	return m
}

// MinLatency returns the smallest latency among the kinds currently
// compatible with o.
func (g *Graph) MinLatency(o dfg.OpID) int {
	m := math.MaxInt
	for _, ki := range g.h[o] {
		if g.lat[ki] < m {
			m = g.lat[ki]
		}
	}
	return m
}

// UpperLatencies returns L_o for every operation as a dfg.Latencies.
func (g *Graph) UpperLatencies() dfg.Latencies {
	ls := make([]int, g.D.N())
	for o := range ls {
		ls[o] = g.UpperLatency(dfg.OpID(o))
	}
	return func(id dfg.OpID) int { return ls[id] }
}

// Reducible reports whether deleting o's maximum-latency H edges would
// strictly reduce L_o while leaving at least one edge: i.e. o has
// compatible kinds at two or more distinct latencies.
func (g *Graph) Reducible(o dfg.OpID) bool {
	return g.MinLatency(o) < g.UpperLatency(o)
}

// DeleteMaxLatencyEdges removes every H edge {o, r} with ℓ(r) == L_o
// (the refinement step of §2.4) and returns the number of edges deleted.
// It refuses to act, returning 0, when o is not Reducible, so an
// operation always keeps at least one compatible kind.
func (g *Graph) DeleteMaxLatencyEdges(o dfg.OpID) int {
	if !g.Reducible(o) {
		return 0
	}
	lmax := g.UpperLatency(o)
	kept := g.h[o][:0]
	deleted := 0
	for _, ki := range g.h[o] {
		if g.lat[ki] == lmax {
			deleted++
		} else {
			kept = append(kept, ki)
		}
	}
	g.h[o] = kept
	return deleted
}

// NumHEdges returns the total number of H edges remaining.
func (g *Graph) NumHEdges() int {
	n := 0
	for _, hs := range g.h {
		n += len(hs)
	}
	return n
}

// Clone returns a deep copy sharing the immutable sequencing graph,
// library and kind set but with independent H edges.
func (g *Graph) Clone() *Graph {
	c := &Graph{D: g.D, Lib: g.Lib, Kinds: g.Kinds, lat: g.lat}
	c.h = make([][]int, len(g.h))
	for i := range g.h {
		c.h[i] = append([]int(nil), g.h[i]...)
	}
	return c
}

// Interval is a reserved execution interval [Start, End) of an operation.
type Interval struct {
	Op    dfg.OpID
	Start int
	End   int
}

// Before reports the C edge (a, b): a is scheduled to complete before b
// starts.
func (a Interval) Before(b Interval) bool { return a.End <= b.Start }

// Overlaps reports whether the two intervals share any control step, i.e.
// neither C edge direction exists between them.
func (a Interval) Overlaps(b Interval) bool { return !a.Before(b) && !b.Before(a) }

// MaxChain returns a maximum-cardinality subset of the intervals that is
// pairwise disjoint — a maximum clique of the transitively oriented
// subgraph G'(O, C) induced by the given operations. For interval orders
// this is the classic activity-selection problem: greedily taking the
// earliest finishing compatible interval is optimal and runs in
// O(n log n). The input slice is reordered in place.
func MaxChain(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sortIntervals(ivs)
	chain := ivs[:1:1]
	for _, iv := range ivs[1:] {
		if chain[len(chain)-1].Before(iv) {
			chain = append(chain, iv)
		}
	}
	return chain
}

// IsChain reports whether the intervals are pairwise disjoint, i.e. form a
// clique of G'(O, C). O(n log n); the input slice is reordered in place.
func IsChain(ivs []Interval) bool {
	sortIntervals(ivs)
	for i := 1; i < len(ivs); i++ {
		if !ivs[i-1].Before(ivs[i]) {
			return false
		}
	}
	return true
}

// sortIntervals orders by end time, breaking ties by start then op ID, so
// both MaxChain and IsChain are deterministic.
func sortIntervals(ivs []Interval) {
	// Insertion sort: chains in this domain are short (tens of ops) and
	// inputs are nearly sorted across repeated calls.
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && lessInterval(ivs[j], ivs[j-1]); j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
}

func lessInterval(a, b Interval) bool {
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Op < b.Op
}
