package wcg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
)

// TestRefinementInvariantsQuick drives random refinement sequences over
// random graphs and checks the §2.4 state invariants after every step:
// the latency upper bound L_o never increases and never drops below the
// minimum latency, every operation keeps at least one compatible kind,
// and the total H-edge count strictly decreases on every accepted
// deletion.
func TestRefinementInvariantsQuick(t *testing.T) {
	lib := model.Default()
	f := func(seed int64, steps uint8) bool {
		g, err := tgff.Generate(tgff.Config{N: 8, Seed: seed})
		if err != nil {
			return false
		}
		w, err := Build(g, lib)
		if err != nil {
			return false
		}
		rnd := rand.New(rand.NewSource(seed ^ 0x5eed))
		prevUpper := make([]int, g.N())
		for o := range prevUpper {
			prevUpper[o] = w.UpperLatency(dfg.OpID(o))
		}
		for s := 0; s < int(steps%40); s++ {
			o := dfg.OpID(rnd.Intn(g.N()))
			edges := w.NumHEdges()
			reducible := w.Reducible(o)
			deleted := w.DeleteMaxLatencyEdges(o)
			if !reducible && deleted != 0 {
				t.Logf("deleted %d edges from irreducible op %d", deleted, o)
				return false
			}
			if reducible && deleted == 0 {
				t.Logf("reducible op %d deleted nothing", o)
				return false
			}
			if w.NumHEdges() != edges-deleted {
				return false
			}
			for i := 0; i < g.N(); i++ {
				id := dfg.OpID(i)
				if len(w.CompatKinds(id)) == 0 {
					t.Logf("op %d lost all kinds", i)
					return false
				}
				u := w.UpperLatency(id)
				if u > prevUpper[i] {
					t.Logf("op %d upper bound rose %d -> %d", i, prevUpper[i], u)
					return false
				}
				if u < w.MinLatency(id) {
					return false
				}
				prevUpper[i] = u
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxChainQuick: MaxChain must always return a pairwise-disjoint
// subset whose size matches an independent greedy recomputation, for
// arbitrary interval soups.
func TestMaxChainQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		var ivs []Interval
		for i, r := range raw {
			if len(ivs) >= 24 {
				break
			}
			start := int(r % 50)
			length := 1 + int(r/50)%7
			ivs = append(ivs, Interval{Op: dfg.OpID(i), Start: start, End: start + length})
		}
		chain := MaxChain(append([]Interval(nil), ivs...))
		// Chain must be pairwise disjoint.
		if !IsChain(append([]Interval(nil), chain...)) {
			return false
		}
		// And maximum: compare against brute force over subsets for small
		// inputs, or the classic greedy count otherwise.
		if len(ivs) <= 12 {
			best := 0
			for mask := 0; mask < 1<<len(ivs); mask++ {
				var sub []Interval
				for i := range ivs {
					if mask&(1<<i) != 0 {
						sub = append(sub, ivs[i])
					}
				}
				if IsChain(sub) && len(sub) > best {
					best = len(sub)
				}
			}
			return len(chain) == best
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
