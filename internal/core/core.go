// Package core implements Algorithm DPAlloc, the paper's polynomial-time
// heuristic for combined scheduling, resource binding and wordlength
// selection of multiple-wordlength systems.
//
// The inner loop follows the paper's §2 pseudo-code. The resource set
// covering each operation is computed once (H edges of the wordlength
// compatibility graph); each iteration schedules the sequencing graph
// with per-operation latency *upper bounds* L_o — so that the binding
// derived afterwards can never violate the schedule — then performs
// combined binding and wordlength selection. If the resulting datapath
// violates the user latency constraint λ, wordlength information is
// refined (maximum-latency H edges of a victim on the bound critical path
// are deleted, lowering its L_o) and the loop repeats. Starting from the
// largest possible range of latencies gives the binder the greatest
// possible resource sharing; latencies are only tightened when forced by
// λ.
//
// The paper treats the per-class resource bound N_y as an input
// (Table 1). For area minimisation subject only to λ — the setting of the
// paper's evaluation — Allocate adds an outer search: each hardware class
// starts at its utilisation lower bound N_y = ⌈Σ_o ℓ_min(o) / λ⌉ and the
// class blocking feasibility is incremented until the inner loop
// succeeds. The first feasible configuration has the fewest resources
// and hence maximal sharing; the binder's cost-effectiveness rule
// declines merges that would not pay for themselves.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bind"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/refine"
	"repro/internal/sched"
	"repro/internal/wcg"
)

// ErrInfeasible is returned when no datapath meets the latency constraint
// even with every operation at its minimum latency (λ below λ_min, or
// resource limits too tight).
var ErrInfeasible = errors.New("core: latency constraint infeasible")

// Options tunes the heuristic. The zero value is the paper's algorithm
// with automatic resource bounds.
type Options struct {
	// Limits fixes the number of resources per hardware class (the
	// paper's N_y input). Nil enables the automatic minimal-resource
	// search described in the package comment.
	Limits sched.Limits
	// DisableGrowth, DisableShrink pass through to bind.SelectOpt
	// (ablation).
	DisableGrowth bool
	DisableShrink bool
	// DisableClosure extracts only the operations' own kinds, without
	// join closure (ablation).
	DisableClosure bool
	// Victim overrides the refinement victim policy (ablation); nil uses
	// the paper's smallest-proportion metric.
	Victim refine.Policy
}

// Stats reports how the heuristic ran.
type Stats struct {
	Iterations   int // scheduling/binding rounds across all configurations
	Refinements  int // H-edge deletion steps
	EdgesDeleted int // total H edges removed
	Kinds        int // size of the extracted resource set R
	Configs      int // resource-bound configurations tried by the auto search
}

// Allocate runs Algorithm DPAlloc on the sequencing graph with latency
// constraint lambda and returns a verified datapath.
func Allocate(d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*datapath.Datapath, Stats, error) {
	return AllocateCtx(context.Background(), d, lib, lambda, opt)
}

// AllocateCtx is Allocate with cancellation: the schedule/bind/refine
// loop and the outer resource-bound search check ctx between rounds and
// return ctx.Err() promptly once it is done.
func AllocateCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*datapath.Datapath, Stats, error) {
	var stats Stats
	if err := d.Validate(); err != nil {
		return nil, stats, err
	}
	if d.N() == 0 {
		return &datapath.Datapath{}, stats, nil
	}
	if opt.Limits != nil {
		stats.Configs = 1
		dp, err := allocateFixed(ctx, d, lib, lambda, opt, opt.Limits, &stats)
		return dp, stats, err
	}

	// Automatic minimal-resource search.
	count := make(map[model.OpType]int)
	busy := make(map[model.OpType]int) // Σ minimum latencies per class
	for _, o := range d.Ops() {
		y := o.Spec.Type.HardwareClass()
		count[y]++
		busy[y] += model.MinLatency(o.Spec, lib)
	}
	limits := make(sched.Limits, len(count))
	for y, b := range busy {
		n := 1
		if lambda > 0 {
			n = (b + lambda - 1) / lambda
		}
		if n < 1 {
			n = 1
		}
		if n > count[y] {
			n = count[y]
		}
		limits[y] = n
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Configs++
		dp, err := allocateFixed(ctx, d, lib, lambda, opt, limits, &stats)
		if err == nil {
			return dp, stats, nil
		}
		if !errors.Is(err, ErrInfeasible) {
			return nil, stats, err
		}
		y, ok := blame(err, d, lib, limits, count, busy, lambda)
		if !ok {
			return nil, stats, fmt.Errorf("%w: λ=%d (λ_min may exceed it)", ErrInfeasible, lambda)
		}
		limits[y]++
	}
}

// blame picks the hardware class whose resource bound should grow after
// an infeasible configuration: the class of the operation the scheduler
// could not place if available, otherwise the class with the highest
// utilisation pressure Σℓ_min/(N_y·λ). Classes already at one resource
// per operation cannot grow. Returns false when no class can grow.
func blame(err error, d *dfg.Graph, lib *model.Library, limits sched.Limits, count, busy map[model.OpType]int, lambda int) (model.OpType, bool) {
	var se *sched.InfeasibleError
	if errors.As(err, &se) {
		y := d.Op(se.Op).Spec.Type.HardwareClass()
		if limits[y] < count[y] {
			return y, true
		}
	}
	bestY, found := model.Add, false
	var bestNum, bestDen int // pressure = busy/(N·λ) compared exactly
	for y, n := range limits {
		if n >= count[y] {
			continue
		}
		num, den := busy[y], n*lambda
		if den <= 0 {
			den = 1
		}
		if !found || num*bestDen > bestNum*den ||
			(num*bestDen == bestNum*den && count[y] > count[bestY]) {
			bestY, bestNum, bestDen, found = y, num, den, true
		}
	}
	return bestY, found
}

// allocateFixed is the paper's Algorithm DPAlloc for a fixed N_y.
func allocateFixed(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, opt Options, limits sched.Limits, stats *Stats) (*datapath.Datapath, error) {
	var g *wcg.Graph
	var err error
	if opt.DisableClosure {
		g, err = wcg.BuildWithKinds(d, lib, ownKinds(d))
	} else {
		g, err = wcg.Build(d, lib)
	}
	if err != nil {
		return nil, err
	}
	stats.Kinds = len(g.Kinds)

	pick := opt.Victim
	if pick == nil {
		pick = refine.ChooseVictim
	}
	bindOpt := bind.Options{DisableGrowth: opt.DisableGrowth, DisableShrink: opt.DisableShrink}

	// Each refinement deletes at least one H edge, so the loop is bounded
	// by the initial edge count; the +2 covers the final feasible round.
	maxIters := g.NumHEdges() + 2
	for iter := 0; iter < maxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats.Iterations++
		r, schedErr := sched.List(g, limits)
		if schedErr != nil {
			if !errors.Is(schedErr, sched.ErrResourceInfeasible) {
				return nil, schedErr
			}
			// No schedule exists under Eqn. 3 with the current
			// wordlength information: refine without binding guidance.
			all := make([]dfg.OpID, d.N())
			for i := range all {
				all[i] = dfg.OpID(i)
			}
			o, ok := pick(g, nil, all)
			if !ok {
				return nil, fmt.Errorf("%w: %w", ErrInfeasible, schedErr)
			}
			stats.Refinements++
			stats.EdgesDeleted += g.DeleteMaxLatencyEdges(o)
			continue
		}
		b, err := bind.SelectOpt(g, r.Start, bindOpt)
		if err != nil {
			return nil, err
		}
		dp := toDatapath(g, r.Start, b)
		if dp.Makespan(lib) <= lambda {
			if err := dp.Verify(d, lib, lambda); err != nil {
				return nil, fmt.Errorf("core: internal error, produced illegal datapath: %w", err)
			}
			return dp, nil
		}
		edges := g.NumHEdges()
		if _, ok := refine.StepWithPolicy(g, r.Start, b, lambda, pick); !ok {
			return nil, fmt.Errorf("%w: λ=%d below achievable latency %d", ErrInfeasible, lambda, dp.Makespan(lib))
		}
		stats.Refinements++
		stats.EdgesDeleted += edges - g.NumHEdges()
	}
	return nil, fmt.Errorf("core: refinement loop exceeded %d iterations", maxIters)
}

// MinLambda returns λ_min for the graph: the smallest latency constraint
// any allocator can meet (critical path at minimum latencies).
func MinLambda(d *dfg.Graph, lib *model.Library) (int, error) {
	return d.MinMakespan(lib)
}

// ownKinds extracts one kind per distinct operation signature, without
// join closure.
func ownKinds(d *dfg.Graph) []model.Kind {
	seen := make(map[model.Kind]bool)
	var kinds []model.Kind
	for _, o := range d.Ops() {
		k := o.Spec.MinKind()
		if !seen[k] {
			seen[k] = true
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// toDatapath converts a schedule plus binding into the common result
// representation.
func toDatapath(g *wcg.Graph, start []int, b *bind.Binding) *datapath.Datapath {
	dp := &datapath.Datapath{
		Start:  append([]int(nil), start...),
		InstOf: append([]int(nil), b.CliqueOf...),
	}
	for _, k := range b.Cliques {
		dp.Instances = append(dp.Instances, datapath.Instance{
			Kind: g.Kinds[k.Kind],
			Ops:  append([]dfg.OpID(nil), k.Ops...),
		})
	}
	return dp
}
