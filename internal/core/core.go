// Package core implements Algorithm DPAlloc, the paper's polynomial-time
// heuristic for combined scheduling, resource binding and wordlength
// selection of multiple-wordlength systems.
//
// The inner loop follows the paper's §2 pseudo-code. The resource set
// covering each operation is computed once (H edges of the wordlength
// compatibility graph); each iteration schedules the sequencing graph
// with per-operation latency *upper bounds* L_o — so that the binding
// derived afterwards can never violate the schedule — then performs
// combined binding and wordlength selection. If the resulting datapath
// violates the user latency constraint λ, wordlength information is
// refined (maximum-latency H edges of a victim on the bound critical path
// are deleted, lowering its L_o) and the loop repeats. Starting from the
// largest possible range of latencies gives the binder the greatest
// possible resource sharing; latencies are only tightened when forced by
// λ.
//
// The paper treats the per-class resource bound N_y as an input
// (Table 1). For area minimisation subject only to λ — the setting of the
// paper's evaluation — Allocate adds an outer search: each hardware class
// starts at its utilisation lower bound N_y = ⌈Σ_o ℓ_min(o) / λ⌉ and the
// class blocking feasibility is incremented until the inner loop
// succeeds. The first feasible configuration has the fewest resources
// and hence maximal sharing; the binder's cost-effectiveness rule
// declines merges that would not pay for themselves.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bind"
	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/refine"
	"repro/internal/sched"
	"repro/internal/wcg"
)

// ErrInfeasible is returned when no datapath meets the latency constraint
// even with every operation at its minimum latency (λ below λ_min, or
// resource limits too tight).
var ErrInfeasible = errors.New("core: latency constraint infeasible")

// Options tunes the heuristic. The zero value is the paper's algorithm
// with automatic resource bounds.
type Options struct {
	// Limits fixes the number of resources per hardware class (the
	// paper's N_y input). Nil enables the automatic minimal-resource
	// search described in the package comment.
	Limits sched.Limits
	// DisableGrowth, DisableShrink pass through to bind.SelectOpt
	// (ablation).
	DisableGrowth bool
	DisableShrink bool
	// DisableClosure extracts only the operations' own kinds, without
	// join closure (ablation).
	DisableClosure bool
	// Victim overrides the refinement victim policy (ablation); nil uses
	// the paper's smallest-proportion metric.
	Victim refine.Policy
	// RefineBatch controls how many victims each refinement round may
	// process before rescheduling. 1 is the paper's exact
	// one-victim-per-reschedule step. 0 (the default) chooses
	// automatically by problem size: small graphs (< BatchMinOps
	// operations — every graph in the paper's range) always use 1;
	// large graphs refine up to n/64 victims per λ-violation round
	// (throttled by how far the makespan still is from λ, so the final
	// approach reverts to single steps) and batch Eqn. 3 deadlock
	// rounds ever more aggressively as a ladder deepens. Values > 1
	// impose a fixed per-round cap regardless of size.
	RefineBatch int
}

// BatchMinOps is the problem size below which the automatic refinement
// batching (Options.RefineBatch == 0) stays at the paper-exact single
// step. Small problems keep bit-identical results; above the threshold
// the allocator trades per-refinement rescheduling for scalability.
const BatchMinOps = 200

// Stats reports how the heuristic ran.
type Stats struct {
	Iterations   int // scheduling/binding rounds across all configurations
	Refinements  int // H-edge deletion steps
	EdgesDeleted int // total H edges removed
	Kinds        int // size of the extracted resource set R
	Configs      int // resource-bound configurations tried by the auto search
	Merges       int // binder clique-growth swallows across all rounds
	Evals        int // binder candidate-clique evaluations across all rounds
}

// Allocate runs Algorithm DPAlloc on the sequencing graph with latency
// constraint lambda and returns a verified datapath.
func Allocate(d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*datapath.Datapath, Stats, error) {
	return AllocateCtx(context.Background(), d, lib, lambda, opt)
}

// AllocateCtx is Allocate with cancellation: the schedule/bind/refine
// loop and the outer resource-bound search check ctx between rounds and
// return ctx.Err() promptly once it is done.
func AllocateCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, opt Options) (*datapath.Datapath, Stats, error) {
	var stats Stats
	if err := d.Validate(); err != nil {
		return nil, stats, err
	}
	if d.N() == 0 {
		return &datapath.Datapath{}, stats, nil
	}
	if opt.Limits != nil {
		stats.Configs = 1
		dp, err := allocateFixed(ctx, d, lib, lambda, opt, opt.Limits, &stats)
		return dp, stats, err
	}

	// Automatic minimal-resource search.
	count := make(map[model.OpType]int)
	busy := make(map[model.OpType]int) // Σ minimum latencies per class
	for _, o := range d.Ops() {
		y := o.Spec.Type.HardwareClass()
		count[y]++
		busy[y] += model.MinLatency(o.Spec, lib)
	}
	limits := make(sched.Limits, len(count))
	for y, b := range busy {
		n := 1
		if lambda > 0 {
			n = (b + lambda - 1) / lambda
		}
		if n < 1 {
			n = 1
		}
		if n > count[y] {
			n = count[y]
		}
		limits[y] = n
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Configs++
		dp, err := allocateFixed(ctx, d, lib, lambda, opt, limits, &stats)
		if err == nil {
			return dp, stats, nil
		}
		if !errors.Is(err, ErrInfeasible) {
			return nil, stats, err
		}
		y, need, ok := blame(err, d, lib, limits, count, busy, lambda)
		if !ok {
			return nil, stats, fmt.Errorf("%w: λ=%d (λ_min may exceed it)", ErrInfeasible, lambda)
		}
		// Small graphs probe one unit at a time — the paper-exact first-
		// feasible search. Large graphs jump by the scheduler's reported
		// deficit, which collapses runs of configurations that Eqn. 3
		// rejects by more than one whole resource.
		if d.N() < BatchMinOps || need < 1 {
			need = 1
		}
		limits[y] = min(limits[y]+need, count[y])
	}
}

// blame picks the hardware class whose resource bound should grow after
// an infeasible configuration: the class of the operation the scheduler
// could not place if available, otherwise the class with the highest
// utilisation pressure Σℓ_min/(N_y·λ). Classes already at one resource
// per operation cannot grow. The second result is the scheduler's
// reported resource deficit for the blamed class (1 when unknown).
// Returns false when no class can grow.
func blame(err error, d *dfg.Graph, lib *model.Library, limits sched.Limits, count, busy map[model.OpType]int, lambda int) (model.OpType, int, bool) {
	var se *sched.InfeasibleError
	if errors.As(err, &se) {
		y := d.Op(se.Op).Spec.Type.HardwareClass()
		if limits[y] < count[y] {
			return y, se.Need, true
		}
	}
	bestY, found := model.Add, false
	var bestNum, bestDen int // pressure = busy/(N·λ) compared exactly
	for y, n := range limits {
		if n >= count[y] {
			continue
		}
		num, den := busy[y], n*lambda
		if den <= 0 {
			den = 1
		}
		if !found || num*bestDen > bestNum*den ||
			(num*bestDen == bestNum*den && count[y] > count[bestY]) {
			bestY, bestNum, bestDen, found = y, num, den, true
		}
	}
	return bestY, 1, found
}

// buildWCG constructs the wordlength compatibility graph the options ask
// for: full join closure, or the operations' own kinds only (ablation).
func buildWCG(d *dfg.Graph, lib *model.Library, opt Options) (*wcg.Graph, error) {
	if opt.DisableClosure {
		return wcg.BuildWithKinds(d, lib, ownKinds(d))
	}
	return wcg.Build(d, lib)
}

// allocateFixed is the paper's Algorithm DPAlloc for a fixed N_y.
func allocateFixed(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, opt Options, limits sched.Limits, stats *Stats) (*datapath.Datapath, error) {
	g, err := buildWCG(d, lib, opt)
	if err != nil {
		return nil, err
	}
	stats.Kinds = len(g.Kinds)

	pick := opt.Victim
	if pick == nil {
		pick = refine.ChooseVictim
	}
	bindOpt := bind.Options{DisableGrowth: opt.DisableGrowth, DisableShrink: opt.DisableShrink}

	// Refinement batch caps (see Options.RefineBatch). batchA is the
	// fixed batch for Eqn. 3 deadlock rounds, which expose no distance
	// signal; the λ-violation rounds scale their batch by the remaining
	// makespan excess up to batchB.
	n := d.N()
	batchA, batchB := 1, 1
	switch {
	case opt.RefineBatch > 1:
		batchA, batchB = opt.RefineBatch, opt.RefineBatch
	case opt.RefineBatch == 0 && n >= BatchMinOps:
		batchA = min(16, n/128)
		batchB = n / 64
	}
	var all []dfg.OpID

	// Each refinement deletes at least one H edge, so the loop is bounded
	// by the initial edge count; the +2 covers the final feasible round.
	maxIters := g.NumHEdges() + 2
	for iter := 0; iter < maxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats.Iterations++
		r, schedErr := sched.List(g, limits)
		if schedErr != nil {
			if !errors.Is(schedErr, sched.ErrResourceInfeasible) {
				return nil, schedErr
			}
			// No schedule exists under Eqn. 3 with the current
			// wordlength information: refine without binding guidance.
			if all == nil {
				all = make([]dfg.OpID, n)
				for i := range all {
					all[i] = dfg.OpID(i)
				}
			}
			// Deadlock rounds escalate with ladder depth: a
			// configuration still deadlocked after many rounds is
			// grinding towards full refinement, and precision there no
			// longer buys area — it only multiplies reschedules.
			ka := batchA
			if batchA > 1 {
				ka = min(64, batchA+iter/8)
			}
			for j := 0; j < ka; j++ {
				o, ok := pick(g, nil, all)
				if !ok {
					if j == 0 {
						return nil, fmt.Errorf("%w: %w", ErrInfeasible, schedErr)
					}
					break
				}
				stats.Refinements++
				stats.EdgesDeleted += g.DeleteMaxLatencyEdges(o)
			}
			continue
		}
		b, bst, err := bind.SelectStats(g, r.Start, bindOpt)
		if err != nil {
			return nil, err
		}
		stats.Merges += bst.Merges
		stats.Evals += bst.Evals
		dp := toDatapath(g, r.Start, b)
		m := dp.Makespan(lib)
		if m <= lambda {
			if err := dp.Verify(d, lib, lambda); err != nil {
				return nil, fmt.Errorf("core: internal error, produced illegal datapath: %w", err)
			}
			return dp, nil
		}
		// The batch shrinks with the remaining excess so the final
		// approach to λ reverts to the paper's single step.
		k := min(batchB, max(1, (m-lambda)/4))
		edges := g.NumHEdges()
		refined := refine.StepBatch(g, r.Start, b, lambda, pick, k)
		if refined == 0 {
			return nil, fmt.Errorf("%w: λ=%d below achievable latency %d", ErrInfeasible, lambda, m)
		}
		stats.Refinements += refined
		stats.EdgesDeleted += edges - g.NumHEdges()
	}
	return nil, fmt.Errorf("core: refinement loop exceeded %d iterations", maxIters)
}

// MinLambda returns λ_min for the graph: the smallest latency constraint
// any allocator can meet (critical path at minimum latencies).
func MinLambda(d *dfg.Graph, lib *model.Library) (int, error) {
	return d.MinMakespan(lib)
}

// ownKinds extracts one kind per distinct operation signature, without
// join closure.
func ownKinds(d *dfg.Graph) []model.Kind {
	seen := make(map[model.Kind]bool)
	var kinds []model.Kind
	for _, o := range d.Ops() {
		k := o.Spec.MinKind()
		if !seen[k] {
			seen[k] = true
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// toDatapath converts a schedule plus binding into the common result
// representation.
func toDatapath(g *wcg.Graph, start []int, b *bind.Binding) *datapath.Datapath {
	dp := &datapath.Datapath{
		Start:  append([]int(nil), start...),
		InstOf: append([]int(nil), b.CliqueOf...),
	}
	for _, k := range b.Cliques {
		dp.Instances = append(dp.Instances, datapath.Instance{
			Kind: g.Kinds[k.Kind],
			Ops:  append([]dfg.OpID(nil), k.Ops...),
		})
	}
	return dp
}
