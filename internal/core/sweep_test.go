package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/fxsim"
	"repro/internal/model"
	"repro/internal/regalloc"
	"repro/internal/tgff"
)

// TestAllocateAcrossShapesAndOptions sweeps the allocator over every
// generator macro-shape, width distribution and ablation option
// combination: all products must be legal datapaths, functionally
// equivalent to the reference evaluation, and register-completable.
func TestAllocateAcrossShapesAndOptions(t *testing.T) {
	lib := model.Default()
	shapes := []tgff.Shape{tgff.ShapeLayered, tgff.ShapeChain, tgff.ShapeForkJoin}
	dists := []tgff.WidthDist{tgff.WidthUniform, tgff.WidthBimodal, tgff.WidthClustered}
	opts := []core.Options{
		{},
		{DisableGrowth: true},
		{DisableShrink: true},
		{DisableClosure: true},
		{DisableGrowth: true, DisableShrink: true, DisableClosure: true},
	}
	for _, shape := range shapes {
		for _, dist := range dists {
			g, err := tgff.Generate(tgff.Config{N: 11, Seed: 321, Shape: shape, Dist: dist})
			if err != nil {
				t.Fatal(err)
			}
			lmin, err := g.MinMakespan(lib)
			if err != nil {
				t.Fatal(err)
			}
			for oi, opt := range opts {
				for _, lambda := range []int{lmin, lmin + lmin/4} {
					name := fmt.Sprintf("shape=%d/dist=%d/opt=%d/λ=%d", shape, dist, oi, lambda)
					dp, stats, err := core.Allocate(g, lib, lambda, opt)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if err := dp.Verify(g, lib, lambda); err != nil {
						t.Fatalf("%s: illegal datapath: %v", name, err)
					}
					if stats.Iterations < 1 {
						t.Fatalf("%s: zero iterations reported", name)
					}
					if err := fxsim.CheckEquivalence(g, lib, dp, fxsim.Inputs{}); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if _, err := regalloc.Build(g, lib, dp, regalloc.Options{}); err != nil {
						t.Fatalf("%s: register completion: %v", name, err)
					}
				}
			}
		}
	}
}

// TestChainNoSharingAtMinLambda: on a pure dependence chain at λ_min
// there is no slack, so every operation must run at its fastest latency;
// the datapath's makespan must equal λ_min exactly.
func TestChainNoSharingAtMinLambda(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 9, Seed: 7, Shape: tgff.ShapeChain})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp, _, err := core.Allocate(g, lib, lmin, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ms := dp.Makespan(lib); ms != lmin {
		t.Fatalf("chain makespan %d != λ_min %d", ms, lmin)
	}
}

// TestChainSharingWithSlack: on a dependence chain no two executions
// ever overlap, so with generous slack the binder must find substantial
// sharing — far fewer instances than operations. (A single instance per
// hardware class is the optimum; the greedy binder is allowed to miss it
// by a little, which is exactly the premium Fig. 4 measures.)
func TestChainSharingWithSlack(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 8, Seed: 11, Shape: tgff.ShapeChain})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	dp, _, err := core.Allocate(g, lib, lmin*3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Instances) > g.N()/2 {
		t.Fatalf("chain with 3x slack shared poorly: %d instances for %d ops:\n%s",
			len(dp.Instances), g.N(), dp.Render(g, lib))
	}
	var _ datapath.Instance // the type the assertions above inspect
}
