package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/tgff"
)

func TestAllocateEmpty(t *testing.T) {
	dp, _, err := Allocate(dfg.New(), model.Default(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Instances) != 0 {
		t.Fatal("non-empty datapath for empty graph")
	}
}

func TestAllocateSingleOp(t *testing.T) {
	d := dfg.New()
	d.AddOp("m", model.Mul, model.Sig(8, 8))
	lib := model.Default()
	dp, stats, err := Allocate(d, lib, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Area(lib) != 64 || dp.Makespan(lib) != 2 {
		t.Fatalf("area %d makespan %d", dp.Area(lib), dp.Makespan(lib))
	}
	if stats.Iterations != 1 {
		t.Errorf("iterations = %d", stats.Iterations)
	}
}

func TestAllocateInfeasibleLambda(t *testing.T) {
	d := dfg.New()
	d.AddOp("m", model.Mul, model.Sig(8, 8)) // needs 2 cycles minimum
	_, _, err := Allocate(d, model.Default(), 1, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestAllocateRejectsCyclicGraph(t *testing.T) {
	d := dfg.New()
	a := d.AddOp("", model.Add, model.AddSig(8))
	b := d.AddOp("", model.Add, model.AddSig(8))
	d.AddDep(a, b)
	d.AddDep(b, a)
	if _, _, err := Allocate(d, model.Default(), 10, Options{}); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

// TestSlackEnablesSharing is the paper's core claim in miniature: with a
// relaxed λ, a small multiply shares the big multiplier (longer latency
// but no extra area); with tight λ it needs its own fast multiplier.
func TestSlackEnablesSharing(t *testing.T) {
	d := dfg.New()
	lib := model.Default()
	// Two independent multiplies: big 20x18 (5 cy) and small 8x8 (2 cy
	// native, 5 cy on the big resource).
	d.AddOp("big", model.Mul, model.Sig(20, 18))
	d.AddOp("small", model.Mul, model.Sig(8, 8))

	lmin, err := MinLambda(d, lib)
	if err != nil {
		t.Fatal(err)
	}
	if lmin != 5 {
		t.Fatalf("λ_min = %d, want 5", lmin)
	}

	// Relaxed λ = 10: serialize both on the 20x18 multiplier. Area 360.
	relaxed, _, err := Allocate(d, lib, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := relaxed.Verify(d, lib, 10); err != nil {
		t.Fatal(err)
	}
	if got := relaxed.Area(lib); got != 360 {
		t.Errorf("relaxed area = %d, want 360 (shared big multiplier)", got)
	}

	// Tight λ = 5: both must run in parallel, two resources, area 424.
	tight, _, err := Allocate(d, lib, lmin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tight.Verify(d, lib, lmin); err != nil {
		t.Fatal(err)
	}
	if got := tight.Area(lib); got != 424 {
		t.Errorf("tight area = %d, want 424 (dedicated resources)", got)
	}
}

// TestMonotoneLambda: area should never increase as λ relaxes on the same
// graph... the heuristic does not guarantee monotonicity op-by-op, but
// the relaxed solution must never be worse than the tight one on this
// simple family.
func TestLambdaSweepLegal(t *testing.T) {
	rnd := rand.New(rand.NewSource(71))
	lib := model.Default()
	for trial := 0; trial < 40; trial++ {
		d := randomDAG(rnd, 1+rnd.Intn(14))
		lmin, err := MinLambda(d, lib)
		if err != nil {
			t.Fatal(err)
		}
		for _, relax := range []float64{0, 0.1, 0.2, 0.3, 1.0} {
			lambda := lmin + int(float64(lmin)*relax)
			dp, _, err := Allocate(d, lib, lambda, Options{})
			if err != nil {
				t.Fatalf("trial %d λ=%d: %v", trial, lambda, err)
			}
			if err := dp.Verify(d, lib, lambda); err != nil {
				t.Fatalf("trial %d λ=%d: %v", trial, lambda, err)
			}
		}
	}
}

func TestAllocateWithResourceLimits(t *testing.T) {
	d := dfg.New()
	lib := model.Default()
	// Four independent 8x8 multiplies, one multiplier: must serialize.
	for i := 0; i < 4; i++ {
		d.AddOp("", model.Mul, model.Sig(8, 8))
	}
	dp, _, err := Allocate(d, lib, 8, Options{Limits: sched.Limits{model.Mul: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Verify(d, lib, 8); err != nil {
		t.Fatal(err)
	}
	if len(dp.Instances) != 1 {
		t.Fatalf("%d instances under limit 1", len(dp.Instances))
	}
	// λ too tight for serialization and limits: infeasible.
	if _, _, err := Allocate(d, lib, 4, Options{Limits: sched.Limits{model.Mul: 1}}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestAblationOptionsStillLegal(t *testing.T) {
	rnd := rand.New(rand.NewSource(73))
	lib := model.Default()
	opts := []Options{
		{DisableGrowth: true},
		{DisableShrink: true},
		{DisableClosure: true},
		{DisableGrowth: true, DisableShrink: true, DisableClosure: true},
	}
	for trial := 0; trial < 20; trial++ {
		d := randomDAG(rnd, 1+rnd.Intn(12))
		lmin, err := MinLambda(d, lib)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + lmin/5
		base, _, err := Allocate(d, lib, lambda, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := base.Verify(d, lib, lambda); err != nil {
			t.Fatal(err)
		}
		for i, o := range opts {
			dp, _, err := Allocate(d, lib, lambda, o)
			if err != nil {
				t.Fatalf("ablation %d: %v", i, err)
			}
			if err := dp.Verify(d, lib, lambda); err != nil {
				t.Fatalf("ablation %d: %v", i, err)
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	d := dfg.New()
	o1 := d.AddOp("", model.Mul, model.Sig(25, 25))
	o2 := d.AddOp("", model.Mul, model.Sig(20, 18))
	d.AddDep(o1, o2)
	lib := model.Default()
	// λ_min = 12: forces refinement of o2 away from the 25x25 kind.
	dp, stats, err := Allocate(d, lib, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Verify(d, lib, 12); err != nil {
		t.Fatal(err)
	}
	if stats.Refinements < 1 || stats.EdgesDeleted < 1 {
		t.Errorf("expected refinement to happen: %+v", stats)
	}
	if stats.Iterations < 2 {
		t.Errorf("expected at least two rounds: %+v", stats)
	}
	if stats.Kinds != 2 {
		t.Errorf("kinds = %d, want 2", stats.Kinds)
	}
}

// TestAllocateCancellationAtScale: a full 1000-operation solve takes
// seconds on this corpus; cancelling the context must cut it off within
// a round or two of the inner loop, not after the configuration ladder
// has run to completion.
func TestAllocateCancellationAtScale(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: 1000, Seed: 2001})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, _, err = AllocateCtx(ctx, g, lib, lmin+lmin/5, Options{})
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: a single scheduling round at N=1000 is tens of
	// milliseconds, the full solve is seconds. Well under the full solve
	// proves the loops poll ctx rather than checking only on entry.
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v; ctx not polled promptly", elapsed)
	}
}

// TestRefineBatchKnob: on a graph large enough to trip the automatic
// batching, the paper-exact single-victim path (RefineBatch=1), the
// automatic batch path, and an explicit batch width all produce legal
// datapaths for the same λ.
func TestRefineBatchKnob(t *testing.T) {
	lib := model.Default()
	g, err := tgff.Generate(tgff.Config{N: BatchMinOps + 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	lambda := lmin + lmin/5
	for _, opt := range []Options{{RefineBatch: 1}, {}, {RefineBatch: 8}} {
		dp, _, err := Allocate(g, lib, lambda, opt)
		if err != nil {
			t.Fatalf("RefineBatch=%d: %v", opt.RefineBatch, err)
		}
		if err := dp.Verify(g, lib, lambda); err != nil {
			t.Fatalf("RefineBatch=%d: %v", opt.RefineBatch, err)
		}
	}
}

func randomDAG(rnd *rand.Rand, n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		if rnd.Intn(2) == 0 {
			g.AddOp("", model.Add, model.AddSig(4+rnd.Intn(20)))
		} else {
			g.AddOp("", model.Mul, model.Sig(4+rnd.Intn(20), 4+rnd.Intn(20)))
		}
	}
	for i := 1; i < n; i++ {
		for k := 0; k < 2; k++ {
			if rnd.Intn(3) == 0 {
				g.AddDep(dfg.OpID(rnd.Intn(i)), dfg.OpID(i))
			}
		}
	}
	return g
}
