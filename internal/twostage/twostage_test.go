package twostage

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dfg"
	"repro/internal/model"
	"repro/internal/tgff"
)

func TestAllocateEmpty(t *testing.T) {
	dp, _, err := Allocate(dfg.New(), model.Default(), 0)
	if err != nil || len(dp.Instances) != 0 {
		t.Fatalf("%v %v", dp, err)
	}
}

func TestAllocateChainSharesSameLatency(t *testing.T) {
	// Three sequential adds of different widths: adders all have latency
	// 2, so they group onto one adder of the maximum width.
	d := dfg.New()
	var prev dfg.OpID = -1
	for _, w := range []int{8, 12, 6} {
		o := d.AddOp("", model.Add, model.AddSig(w))
		if prev >= 0 {
			d.AddDep(prev, o)
		}
		prev = o
	}
	lib := model.Default()
	dp, _, err := Allocate(d, lib, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Verify(d, lib, 6); err != nil {
		t.Fatal(err)
	}
	if len(dp.Instances) != 1 || dp.Area(lib) != 12 {
		t.Fatalf("instances %d area %d, want 1/12", len(dp.Instances), dp.Area(lib))
	}
}

func TestNoCrossBandSharing(t *testing.T) {
	// A 20x18 multiply (5 cycles) followed by an 8x8 multiply (2
	// cycles): DPAlloc can share them with slack, but the two-stage
	// baseline must NOT (sharing would raise the small op's latency), so
	// it pays for two multipliers regardless of λ.
	d := dfg.New()
	a := d.AddOp("", model.Mul, model.Sig(20, 18))
	b := d.AddOp("", model.Mul, model.Sig(8, 8))
	d.AddDep(a, b)
	lib := model.Default()
	dp, _, err := Allocate(d, lib, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Verify(d, lib, 100); err != nil {
		t.Fatal(err)
	}
	if len(dp.Instances) != 2 {
		t.Fatalf("two-stage shared across latency bands: %d instances", len(dp.Instances))
	}
	if dp.Area(lib) != 360+64 {
		t.Fatalf("area = %d, want 424", dp.Area(lib))
	}
}

func TestSameBandMultiplySharing(t *testing.T) {
	// 9x8 (latency 3) and 10x7 (latency 3): join 10x8 also latency 3 —
	// the baseline may share them when sequential.
	d := dfg.New()
	a := d.AddOp("", model.Mul, model.Sig(9, 8))
	b := d.AddOp("", model.Mul, model.Sig(10, 7))
	d.AddDep(a, b)
	lib := model.Default()
	dp, _, err := Allocate(d, lib, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Verify(d, lib, 6); err != nil {
		t.Fatal(err)
	}
	if len(dp.Instances) != 1 {
		t.Fatalf("same-band sequential multiplies not shared: %d instances", len(dp.Instances))
	}
	if dp.Area(lib) != 80 { // 10x8
		t.Fatalf("area = %d, want 80", dp.Area(lib))
	}
}

func TestInfeasibleLambda(t *testing.T) {
	d := dfg.New()
	d.AddOp("", model.Mul, model.Sig(8, 8))
	if _, _, err := Allocate(d, model.Default(), 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestOptimalBeatsGreedyOrMatches(t *testing.T) {
	// On random graphs the B&B result must never exceed the greedy
	// incumbent, and all results must verify.
	lib := model.Default()
	for seed := int64(0); seed < 40; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lmin + lmin/4
		dp, stats, err := Allocate(g, lib, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if err := dp.Verify(g, lib, lambda); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lat := g.MinLatencies(lib)
		start := dp.Start
		greedyArea, _, err := greedyIncumbent(context.Background(), g, lib, start, lat)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Area(lib) > greedyArea {
			t.Fatalf("seed %d: B&B area %d worse than greedy %d", seed, dp.Area(lib), greedyArea)
		}
		if stats.Capped {
			t.Logf("seed %d: node cap hit (%d nodes)", seed, stats.Nodes)
		}
	}
}

func TestLambdaInsensitiveAcrossBands(t *testing.T) {
	// The defining weakness: for a fixed schedule shape, relaxing λ far
	// beyond what serialization can use cannot buy cross-band sharing.
	d := dfg.New()
	a := d.AddOp("", model.Mul, model.Sig(20, 18))
	b := d.AddOp("", model.Mul, model.Sig(8, 8))
	d.AddDep(a, b)
	lib := model.Default()
	areas := make(map[int64]bool)
	for _, lambda := range []int{8, 20, 50} {
		dp, _, err := Allocate(d, lib, lambda)
		if err != nil {
			t.Fatal(err)
		}
		areas[dp.Area(lib)] = true
	}
	if len(areas) != 1 {
		t.Fatalf("areas vary with λ: %v", areas)
	}
}

func TestStage1RespectsDependenciesUnderPressure(t *testing.T) {
	lib := model.Default()
	for seed := int64(100); seed < 130; seed++ {
		g, err := tgff.Generate(tgff.Config{N: 14, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lmin, err := g.MinMakespan(lib)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly λ_min: stage 1 must still find a schedule.
		dp, _, err := Allocate(g, lib, lmin)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := dp.Verify(g, lib, lmin); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// countdownCtx is a context whose Err() starts returning Canceled after
// a fixed number of polls — a deterministic way to cancel "mid-solve"
// at exactly the Nth cancellation check, with no timing races.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left > 0 {
		c.left--
		return nil
	}
	return context.Canceled
}

func TestAllocateCtxCanceledInStage2(t *testing.T) {
	// A graph big enough that stage 2 visits many nodes; the countdown
	// lets the first few polls (stage-1 loop, greedy incumbent) pass and
	// trips inside the branch-and-bound binding loop.
	g, err := tgff.Generate(tgff.Config{N: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lib := model.Default()
	lmin, err := g.MinMakespan(lib)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &countdownCtx{Context: context.Background(), left: 4}
	dp, _, err := AllocateCtx(ctx, g, lib, lmin+lmin/3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if dp != nil {
		t.Fatal("canceled solve returned a datapath")
	}
}

func TestAllocateCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := tgff.Generate(tgff.Config{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AllocateCtx(ctx, g, model.Default(), 50); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
