// Package twostage implements the comparison baseline of the paper's §3:
// the two-stage scheduling/binding approach of Constantinides, Cheung and
// Luk, "Multiple-wordlength resource binding" (FPL 2000, reference [4]),
// as characterised by the paper — "an optimal branch-and-bound approach
// for resource binding and wordlength selection ... based on sharing only
// resources that can be grouped together without increasing the latency
// of the operation".
//
// Stage 1 schedules the graph wordlength-blind: classical list scheduling
// with every operation at its native latency under per-class resource
// counts (started at the utilisation lower bound and grown until the
// latency constraint is met). Stage 2 finds the minimum-area partition
// of the scheduled operations into resource cliques by branch-and-bound,
// where a clique is feasible only if its members are pairwise
// time-disjoint and their joined signature's kind has exactly the same
// latency as every member's native latency — operations never slow down,
// which is precisely the flexibility this baseline lacks compared with
// Algorithm DPAlloc.
package twostage

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/datapath"
	"repro/internal/dfg"
	"repro/internal/model"
)

// ErrInfeasible is returned when λ is below the graph's λ_min.
var ErrInfeasible = errors.New("twostage: latency constraint infeasible")

// Stats reports how the baseline ran.
type Stats struct {
	Configs int  // resource configurations tried by stage 1
	Nodes   int  // branch-and-bound nodes visited by stage 2
	Capped  bool // true if the node cap was hit (result is best-found)
}

// nodeCap bounds the stage-2 search; when hit, the best incumbent is
// returned and Stats.Capped is set. Searches complete uncapped for the
// small-to-mid problem sizes; at the top of the paper's range (around 24
// operations) a few percent of graphs return the best-found partition
// instead of the proven optimum, which only slightly understates this
// baseline's area (i.e. is conservative for the paper's Fig. 3 penalty).
const nodeCap = 1 << 19

// Allocate runs the two-stage baseline. Note the returned area is
// λ-insensitive beyond schedule serialisation: stage 2 can never trade
// latency slack for sharing across wordlength-latency bands.
func Allocate(d *dfg.Graph, lib *model.Library, lambda int) (*datapath.Datapath, Stats, error) {
	return AllocateCtx(context.Background(), d, lib, lambda)
}

// AllocateCtx is Allocate with cancellation: the stage-1 configuration
// search and the stage-2 branch-and-bound poll ctx and return ctx.Err()
// promptly once it is done, discarding any incumbent found so far.
func AllocateCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int) (*datapath.Datapath, Stats, error) {
	var stats Stats
	if err := d.Validate(); err != nil {
		return nil, stats, err
	}
	if d.N() == 0 {
		return &datapath.Datapath{}, stats, nil
	}

	start, err := stage1(ctx, d, lib, lambda, &stats)
	if err != nil {
		return nil, stats, err
	}
	dp, err := stage2(ctx, d, lib, start, &stats)
	if err != nil {
		return nil, stats, err
	}
	if err := dp.Verify(d, lib, lambda); err != nil {
		return nil, stats, fmt.Errorf("twostage: internal error, illegal datapath: %w", err)
	}
	return dp, stats, nil
}

// WordlengthBlindSchedule exposes stage 1 (classical list scheduling at
// native latencies with minimal per-class resource counts meeting λ) for
// reuse by other two-stage baselines.
func WordlengthBlindSchedule(d *dfg.Graph, lib *model.Library, lambda int) ([]int, error) {
	return WordlengthBlindScheduleCtx(context.Background(), d, lib, lambda)
}

// WordlengthBlindScheduleCtx is WordlengthBlindSchedule with
// cancellation between configuration attempts.
func WordlengthBlindScheduleCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int) ([]int, error) {
	var stats Stats
	return stage1(ctx, d, lib, lambda, &stats)
}

// GreedyPartition exposes the descending-area first-fit partition over a
// fixed schedule (the constructive colouring this baseline family starts
// from) as a complete datapath.
func GreedyPartition(d *dfg.Graph, lib *model.Library, start []int) *datapath.Datapath {
	dp, _ := GreedyPartitionCtx(context.Background(), d, lib, start)
	return dp
}

// GreedyPartitionCtx is GreedyPartition with cancellation polled in the
// binding loop.
func GreedyPartitionCtx(ctx context.Context, d *dfg.Graph, lib *model.Library, start []int) (*datapath.Datapath, error) {
	lat := d.MinLatencies(lib)
	_, assign, err := greedyIncumbent(ctx, d, lib, start, lat)
	if err != nil {
		return nil, err
	}
	return materialize(d, start, assign), nil
}

// ---- Stage 1: wordlength-blind list scheduling ----

func stage1(ctx context.Context, d *dfg.Graph, lib *model.Library, lambda int, stats *Stats) ([]int, error) {
	lat := d.MinLatencies(lib)
	count := make(map[model.OpType]int)
	busy := make(map[model.OpType]int)
	for _, o := range d.Ops() {
		y := o.Spec.Type.HardwareClass()
		count[y]++
		busy[y] += lat(o.ID)
	}
	limits := make(map[model.OpType]int, len(count))
	for y, b := range busy {
		nRes := 1
		if lambda > 0 {
			nRes = (b + lambda - 1) / lambda
		}
		if nRes < 1 {
			nRes = 1
		}
		if nRes > count[y] {
			nRes = count[y]
		}
		limits[y] = nRes
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats.Configs++
		start, makespan, err := listSchedule(d, lat, limits)
		if err != nil {
			return nil, err
		}
		if makespan <= lambda {
			return start, nil
		}
		// Grow the most pressured un-capped class.
		bestY, found := model.Add, false
		var bestNum, bestDen int
		for y, nr := range limits {
			if nr >= count[y] {
				continue
			}
			num, den := busy[y], nr*lambda
			if den <= 0 {
				den = 1
			}
			if !found || num*bestDen > bestNum*den {
				bestY, bestNum, bestDen, found = y, num, den, true
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: λ=%d below λ_min %d", ErrInfeasible, lambda, makespan)
		}
		limits[bestY]++
	}
}

// listSchedule is classical resource-constrained list scheduling with
// per-step class counting (the paper's Eqn. 2) at native latencies.
func listSchedule(d *dfg.Graph, lat dfg.Latencies, limits map[model.OpType]int) ([]int, int, error) {
	n := d.N()
	order, err := d.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	prio := make([]int, n)
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0
		for _, s := range d.Succ(id) {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[id] = best + lat(id)
	}

	start := make([]int, n)
	finish := make([]int, n)
	scheduled := make([]bool, n)
	used := make(map[model.OpType][]int)
	makespan, nDone, t := 0, 0, 0
	for nDone < n {
		var ready []dfg.OpID
		for i := 0; i < n; i++ {
			if scheduled[i] {
				continue
			}
			ok := true
			for _, p := range d.Pred(dfg.OpID(i)) {
				if !scheduled[p] || finish[p] > t {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, dfg.OpID(i))
			}
		}
		sort.Slice(ready, func(i, j int) bool {
			a, b := ready[i], ready[j]
			if prio[a] != prio[b] {
				return prio[a] > prio[b]
			}
			return a < b
		})
		for _, o := range ready {
			y := d.Op(o).Spec.Type.HardwareClass()
			limit, constrained := limits[y]
			l := lat(o)
			if constrained {
				fits := true
				u := used[y]
				for s := t; s < t+l; s++ {
					if s < len(u) && u[s]+1 > limit {
						fits = false
						break
					}
				}
				if !fits {
					continue
				}
				for t+l > len(u) {
					u = append(u, 0)
				}
				for s := t; s < t+l; s++ {
					u[s]++
				}
				used[y] = u
			}
			scheduled[o] = true
			start[o] = t
			finish[o] = t + l
			if finish[o] > makespan {
				makespan = finish[o]
			}
			nDone++
		}
		next := -1
		for i := 0; i < n; i++ {
			if scheduled[i] && finish[i] > t && (next < 0 || finish[i] < next) {
				next = finish[i]
			}
		}
		if next < 0 {
			next = t + 1
		}
		t = next
	}
	return start, makespan, nil
}

// ---- Stage 2: optimal latency-preserving binding by branch & bound ----

// cliqueState is a partial clique during the search.
type cliqueState struct {
	class model.OpType
	lat   int             // shared native latency of all members
	sig   model.Signature // join of member signatures
	area  int64           // area of the kind on sig
	ops   []dfg.OpID
	ends  []iv // member intervals, kept sorted by start
}

type iv struct{ s, e int }

func stage2(ctx context.Context, d *dfg.Graph, lib *model.Library, start []int, stats *Stats) (*datapath.Datapath, error) {
	n := d.N()
	lat := d.MinLatencies(lib)
	ops := make([]dfg.OpID, n)
	for i := range ops {
		ops[i] = dfg.OpID(i)
	}
	// Branch on operations in schedule order.
	sort.Slice(ops, func(i, j int) bool {
		if start[ops[i]] != start[ops[j]] {
			return start[ops[i]] < start[ops[j]]
		}
		return ops[i] < ops[j]
	})

	s := &searcher{ctx: ctx, d: d, lib: lib, start: start, lat: lat, ops: ops, stats: stats}
	// Greedy incumbent: descending area first-fit (also the seed for the
	// B&B upper bound).
	var err error
	s.best, s.bestAssign, err = greedyIncumbent(ctx, d, lib, start, lat)
	if err != nil {
		return nil, err
	}
	s.assign = make([]int, n)
	s.dfs(0, 0, nil)
	if s.err != nil {
		return nil, s.err
	}
	return materialize(d, start, s.bestAssign), nil
}

// materialize builds the datapath for a clique assignment (op → clique
// id): each clique becomes one instance on the join of its member
// signatures.
func materialize(d *dfg.Graph, start []int, assign []int) *datapath.Datapath {
	n := d.N()
	cliques := make(map[int][]dfg.OpID)
	for o, c := range assign {
		cliques[c] = append(cliques[c], dfg.OpID(o))
	}
	keys := make([]int, 0, len(cliques))
	for k := range cliques {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	dp := &datapath.Datapath{Start: append([]int(nil), start...), InstOf: make([]int, n)}
	for _, k := range keys {
		members := cliques[k]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		sig := d.Op(members[0]).Spec.Sig
		class := d.Op(members[0]).Spec.Type.HardwareClass()
		for _, o := range members[1:] {
			sig = sig.Join(d.Op(o).Spec.Sig)
		}
		idx := len(dp.Instances)
		dp.Instances = append(dp.Instances, datapath.Instance{
			Kind: model.Kind{Class: class, Sig: sig},
			Ops:  members,
		})
		for _, o := range members {
			dp.InstOf[o] = idx
		}
	}
	return dp
}

type searcher struct {
	ctx   context.Context
	d     *dfg.Graph
	lib   *model.Library
	start []int
	lat   dfg.Latencies
	ops   []dfg.OpID
	stats *Stats

	assign     []int // clique id per op during DFS
	best       int64
	bestAssign []int
	err        error // ctx.Err() once cancellation is observed
}

// ctxPollMask throttles cancellation checks in the binding loop to one
// per 1024 nodes: frequent enough that a canceled search unwinds within
// microseconds, cheap enough not to show on the node rate.
const ctxPollMask = 1<<10 - 1

// dfs assigns ops[idx:] to cliques. cost is the area of the partial
// partition; cliques holds the open partial cliques.
func (s *searcher) dfs(idx int, cost int64, cliques []*cliqueState) {
	if s.err != nil {
		return
	}
	if cost >= s.best {
		return
	}
	s.stats.Nodes++
	if s.stats.Nodes&ctxPollMask == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return
		}
	}
	if s.stats.Nodes > nodeCap {
		s.stats.Capped = true
		return
	}
	if idx == len(s.ops) {
		s.best = cost
		s.bestAssign = append(s.bestAssign[:0], s.assign...)
		return
	}
	o := s.ops[idx]
	spec := s.d.Op(o).Spec
	class := spec.Type.HardwareClass()
	l := s.lat(o)
	myIv := iv{s.start[o], s.start[o] + l}

	// Try joining each existing clique, cheapest delta first.
	type cand struct {
		ci    int
		delta int64
		sig   model.Signature
	}
	var cands []cand
	for ci, c := range cliques {
		if c.class != class || c.lat != l {
			continue
		}
		if overlapsAny(c.ends, myIv) {
			continue
		}
		j := c.sig.Join(spec.Sig)
		k := model.Kind{Class: class, Sig: j}
		if s.lib.Latency(k) != l {
			continue // sharing would increase the members' latency
		}
		cands = append(cands, cand{ci, s.lib.Area(k) - c.area, j})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].delta != cands[j].delta {
			return cands[i].delta < cands[j].delta
		}
		return cands[i].ci < cands[j].ci
	})
	for _, c := range cands {
		cl := cliques[c.ci]
		oldSig, oldArea := cl.sig, cl.area
		cl.sig, cl.area = c.sig, oldArea+c.delta
		cl.ops = append(cl.ops, o)
		cl.ends = insertIv(cl.ends, myIv)
		s.assign[o] = c.ci
		s.dfs(idx+1, cost+c.delta, cliques)
		cl.sig, cl.area = oldSig, oldArea
		cl.ops = cl.ops[:len(cl.ops)-1]
		cl.ends = removeIv(cl.ends, myIv)
	}

	// Open a new clique.
	k := spec.MinKind()
	area := s.lib.Area(k)
	nc := &cliqueState{class: class, lat: l, sig: spec.Sig, area: area,
		ops: []dfg.OpID{o}, ends: []iv{myIv}}
	s.assign[o] = len(cliques)
	s.dfs(idx+1, cost+area, append(cliques, nc))
}

func overlapsAny(ivs []iv, x iv) bool {
	for _, v := range ivs {
		if x.s < v.e && v.s < x.e {
			return true
		}
	}
	return false
}

func insertIv(ivs []iv, x iv) []iv {
	ivs = append(ivs, x)
	for i := len(ivs) - 1; i > 0 && ivs[i].s < ivs[i-1].s; i-- {
		ivs[i], ivs[i-1] = ivs[i-1], ivs[i]
	}
	return ivs
}

func removeIv(ivs []iv, x iv) []iv {
	for i, v := range ivs {
		if v == x {
			return append(ivs[:i], ivs[i+1:]...)
		}
	}
	return ivs
}

// greedyIncumbent builds a quick feasible partition: operations in
// descending area order, first fit into a compatible clique. The
// binding loop polls ctx so even the constructive pass can be canceled
// on very large graphs.
func greedyIncumbent(ctx context.Context, d *dfg.Graph, lib *model.Library, start []int, lat dfg.Latencies) (int64, []int, error) {
	n := d.N()
	ops := make([]dfg.OpID, n)
	for i := range ops {
		ops[i] = dfg.OpID(i)
	}
	sort.Slice(ops, func(i, j int) bool {
		ai := lib.Area(d.Op(ops[i]).Spec.MinKind())
		aj := lib.Area(d.Op(ops[j]).Spec.MinKind())
		if ai != aj {
			return ai > aj
		}
		return ops[i] < ops[j]
	})
	assign := make([]int, n)
	var cliques []*cliqueState
	var total int64
	for i, o := range ops {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
		}
		spec := d.Op(o).Spec
		class := spec.Type.HardwareClass()
		l := lat(o)
		myIv := iv{start[o], start[o] + l}
		placed := false
		for ci, c := range cliques {
			if c.class != class || c.lat != l || overlapsAny(c.ends, myIv) {
				continue
			}
			j := c.sig.Join(spec.Sig)
			k := model.Kind{Class: class, Sig: j}
			if lib.Latency(k) != l {
				continue
			}
			delta := lib.Area(k) - c.area
			c.sig, c.area = j, c.area+delta
			c.ops = append(c.ops, o)
			c.ends = insertIv(c.ends, myIv)
			total += delta
			assign[o] = ci
			placed = true
			break
		}
		if placed {
			continue
		}
		k := spec.MinKind()
		cliques = append(cliques, &cliqueState{class: class, lat: l, sig: spec.Sig,
			area: lib.Area(k), ops: []dfg.OpID{o}, ends: []iv{myIv}})
		assign[o] = len(cliques) - 1
		total += lib.Area(k)
	}
	return total, assign, nil
}
