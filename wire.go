package mwl

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
)

// Hash returns the canonical content hash of the problem: the SHA-256 of
// its canonical v1 JSON encoding (method name resolved, graph in
// canonical order, map keys sorted), rendered as hex. Problems that
// solve identically hash identically, which is what the Service keys its
// memoization on. A problem carrying an in-memory Lib override has no
// canonical encoding and cannot be hashed.
func (p Problem) Hash() (string, error) {
	if p.Lib != nil {
		return "", errors.New("mwl: problem with in-memory Library override has no canonical hash")
	}
	q := p
	q.Method = p.method()
	blob, err := json.Marshal(q)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
