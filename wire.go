package mwl

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// Hash returns the canonical content hash of the problem: the SHA-256 of
// its canonical v1 JSON encoding (method name resolved, graph in
// canonical order, map keys sorted), rendered as hex. Problems that
// solve identically hash identically, which is what the Service keys its
// memoization on. A problem carrying an in-memory Lib override has no
// canonical encoding and cannot be hashed.
func (p Problem) Hash() (string, error) {
	if p.Lib != nil {
		return "", errors.New("mwl: problem with in-memory Library override has no canonical hash")
	}
	q := p
	q.Method = p.method()
	blob, err := json.Marshal(q)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// BatchRequest is the wire form of a batch solve (POST /v1/solve/batch):
// a list of independent problems solved concurrently through one
// Service, deduplicated by canonical hash.
type BatchRequest struct {
	Problems []Problem `json:"problems"`
}

// BatchResponse is the wire form of a batch solve's outcome. Results
// aligns one-to-one with the request's Problems.
type BatchResponse struct {
	Results []BatchResultWire `json:"results"`
}

// BatchResultWire is one problem's outcome on the wire: exactly one of
// Solution or Error is set. Infeasible marks well-formed problems that
// provably have no datapath (as opposed to malformed problems or solver
// failures), mirroring the 422-vs-400 split of the single-solve
// endpoint.
type BatchResultWire struct {
	Solution   *Solution `json:"solution,omitempty"`
	Error      string    `json:"error,omitempty"`
	Infeasible bool      `json:"infeasible,omitempty"`
}

// Wire converts a Service batch outcome into its wire form.
func (r BatchResult) Wire() BatchResultWire {
	if r.Err != nil {
		return BatchResultWire{Error: r.Err.Error(), Infeasible: IsInfeasible(r.Err)}
	}
	sol := r.Solution
	return BatchResultWire{Solution: &sol}
}

// WireBatch converts a whole SolveBatch outcome into a BatchResponse.
func WireBatch(results []BatchResult) BatchResponse {
	out := BatchResponse{Results: make([]BatchResultWire, len(results))}
	for i, r := range results {
		out.Results[i] = r.Wire()
	}
	return out
}

// StreamResultWire is one NDJSON record of the streaming batch endpoint
// (POST /v1/solve/stream): a BatchResultWire tagged with the index of
// the problem it answers in the request's Problems array. Records are
// emitted as solves complete, so they arrive in completion order, not
// input order — clients reassemble by Index.
type StreamResultWire struct {
	Index int `json:"index"`
	BatchResultWire
}

// WireStream converts one indexed batch outcome into its NDJSON stream
// record.
func WireStream(i int, r BatchResult) StreamResultWire {
	return StreamResultWire{Index: i, BatchResultWire: r.Wire()}
}

// FromWire converts a wire-form result back into a BatchResult, the
// inverse of BatchResult.Wire up to error identity: a relayed error
// becomes a plain error carrying the original message, wrapping
// ErrInfeasible when the record was marked infeasible so the
// classification survives another Wire round trip. The mwld shard
// forwarder uses this to relay a peer's answer as its own.
func (r BatchResultWire) FromWire() BatchResult {
	if r.Error != "" {
		if r.Infeasible {
			return BatchResult{Err: fmt.Errorf("%w: %s", ErrInfeasible, r.Error)}
		}
		return BatchResult{Err: errors.New(r.Error)}
	}
	if r.Solution == nil {
		return BatchResult{Err: errors.New("mwl: wire result carries neither solution nor error")}
	}
	return BatchResult{Solution: *r.Solution}
}
