// Tests for the "portfolio" method: racing semantics, degenerate
// single-entrant behaviour, entrant validation, and — mirroring the
// batch-runner tests — prompt cancellation of losers with a bounded
// goroutine footprint.
package mwl_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	mwl "repro"
)

func portfolioProblem(t *testing.T, n int, seed int64) mwl.Problem {
	t.Helper()
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return mwl.Problem{Method: "portfolio", Graph: g, Lambda: lmin + 3}
}

// TestPortfolioSingleMethodDegradesExactly: a portfolio of one method is
// that method — same datapath, same numbers — just wearing the
// portfolio envelope.
func TestPortfolioSingleMethodDegradesExactly(t *testing.T) {
	p := portfolioProblem(t, 9, 31)
	p.Options.Portfolio = []string{"twostage"}
	got, err := mwl.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	q := p
	q.Method = "twostage"
	q.Options.Portfolio = nil
	want, err := mwl.Solve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Datapath, want.Datapath) {
		t.Fatal("single-entrant portfolio datapath differs from the method's own")
	}
	if got.Area != want.Area || got.Makespan != want.Makespan {
		t.Fatalf("numbers differ: portfolio (%d, %d) vs direct (%d, %d)",
			got.Area, got.Makespan, want.Area, want.Makespan)
	}
	if got.Method != "portfolio" || got.Stats.Winner != "twostage" {
		t.Fatalf("envelope wrong: method %q winner %q", got.Method, got.Stats.Winner)
	}
	if mwl.PortfolioWins()["twostage"] == 0 {
		t.Fatal("win not recorded on the scoreboard")
	}
}

// TestPortfolioCancelsLosersAtDeadline: with a race deadline, the
// portfolio returns the best completed solution, the blocked loser
// observes cancellation promptly, and no goroutines outlive the solve.
func TestPortfolioCancelsLosersAtDeadline(t *testing.T) {
	entered := make(chan struct{}, 4)
	canceled := make(chan struct{}, 4)
	setBatchStub(t, func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		entered <- struct{}{}
		<-ctx.Done()
		canceled <- struct{}{}
		return mwl.Solution{}, ctx.Err()
	})
	p := portfolioProblem(t, 8, 47)
	p.Options.Portfolio = []string{"dpalloc", "test-batch-stub"}
	p.Options.TimeLimit = 150 * time.Millisecond

	base := runtime.NumGoroutine()
	t0 := time.Now()
	sol, err := mwl.Solve(context.Background(), p)
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Winner != "dpalloc" {
		t.Fatalf("winner %q, want dpalloc", sol.Stats.Winner)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("race took %v: loser not cancelled at the %v deadline", elapsed, p.Options.TimeLimit)
	}
	select {
	case <-entered:
	default:
		t.Fatal("loser never started")
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("loser never observed cancellation")
	}
	// The batch runner drains its workers before Solve returns, so the
	// goroutine count settles back to the pre-race baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base+4 {
		t.Fatalf("%d goroutines after the race (baseline %d): losers leaked", g, base)
	}
}

// TestPortfolioParentCancellation: cancelling the caller's ctx while
// every entrant is still running unwinds the whole race with ctx.Err().
func TestPortfolioParentCancellation(t *testing.T) {
	entered := make(chan struct{}, 4)
	setBatchStub(t, func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		entered <- struct{}{}
		<-ctx.Done()
		return mwl.Solution{}, ctx.Err()
	})
	p := portfolioProblem(t, 8, 53)
	p.Options.Portfolio = []string{"test-batch-stub"}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := mwl.Solve(ctx, p)
		done <- err
	}()
	<-entered
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("portfolio did not unwind after parent cancellation")
	}
}

// TestPortfolioDeadlineWithNoFinisher: when nothing completes before
// the race deadline, the failure says so rather than inventing an
// answer.
func TestPortfolioDeadlineWithNoFinisher(t *testing.T) {
	setBatchStub(t, func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		<-ctx.Done()
		return mwl.Solution{}, ctx.Err()
	})
	p := portfolioProblem(t, 8, 59)
	p.Options.Portfolio = []string{"test-batch-stub"}
	p.Options.TimeLimit = 50 * time.Millisecond
	_, err := mwl.Solve(context.Background(), p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestPortfolioRejectsBadEntrants(t *testing.T) {
	p := portfolioProblem(t, 7, 61)
	p.Options.Portfolio = []string{"no-such-method"}
	if _, err := mwl.Solve(context.Background(), p); !errors.Is(err, mwl.ErrUnknownMethod) {
		t.Fatalf("unknown entrant: err = %v", err)
	}
	p.Options.Portfolio = []string{"portfolio"}
	if _, err := mwl.Solve(context.Background(), p); !errors.Is(err, mwl.ErrInvalidProblem) {
		t.Fatalf("recursive entrant: err = %v", err)
	}
	p.Options.Portfolio = nil
	p.Graph = nil
	if _, err := mwl.Solve(context.Background(), p); !errors.Is(err, mwl.ErrInvalidProblem) {
		t.Fatalf("graphless problem: err = %v", err)
	}
}

// TestPortfolioInfeasibleClassification: when every entrant proves the
// problem infeasible, the portfolio's verdict classifies as infeasible
// too (the 422 path end to end).
func TestPortfolioInfeasibleClassification(t *testing.T) {
	p := portfolioProblem(t, 7, 67)
	p.Lambda = 1 // below λ_min for any graph with a multiply
	p.Options.Portfolio = []string{"dpalloc", "twostage"}
	_, err := mwl.Solve(context.Background(), p)
	if err == nil || !mwl.IsInfeasible(err) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}
