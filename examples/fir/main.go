// Command fir allocates datapaths for a multiple-wordlength FIR filter —
// the archetypal workload of the multiple-wordlength paradigm, where an
// error analysis (e.g. the Synoptix flow the paper cites) assigns each
// coefficient its own wordlength. It sweeps the latency constraint from
// λ_min to +50% and prints the area/latency trade-off achieved by the
// heuristic against the two-stage and descending-wordlength baselines.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	mwl "repro"
)

func main() {
	dataW := flag.Int("data", 12, "input sample wordlength (bits)")
	accW := flag.Int("acc", 24, "accumulator wordlength cap (bits)")
	flag.Parse()

	// A symmetric low-pass design: outer taps quantise to fewer bits
	// than the centre taps.
	coeffs := []int{4, 6, 8, 10, 12, 10, 8, 6, 4}
	g, err := mwl.FIRGraph(*dataW, coeffs, *accW)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d-tap FIR, %d-bit data, coefficient wordlengths %v\n", len(coeffs), *dataW, coeffs)
	fmt.Printf("%d operations, λ_min = %d cycles\n\n", g.N(), lmin)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "λ\trelax\theuristic\ttwo-stage [4]\tdescending [14]\tsaving vs [4]")
	ctx := context.Background()
	solve := func(method string, lambda int) mwl.Solution {
		sol, err := mwl.Solve(ctx, mwl.Problem{Method: method, Graph: g, Lambda: lambda})
		if err != nil {
			log.Fatal(err)
		}
		return sol
	}
	for relax := 0; relax <= 50; relax += 10 {
		lambda := lmin + lmin*relax/100
		ha := solve("dpalloc", lambda).Area
		ta := solve("twostage", lambda).Area
		da := solve("descend", lambda).Area
		fmt.Fprintf(w, "%d\t+%d%%\t%d\t%d\t%d\t%.1f%%\n",
			lambda, relax, ha, ta, da, 100*float64(ta-ha)/float64(ha))
	}
	w.Flush()

	lambda := lmin + lmin/2
	sol := solve("dpalloc", lambda)
	fmt.Printf("\ndatapath at λ = %d:\n%s", lambda, sol.Datapath.Render(g, lib))
}
