// Command iir allocates datapaths for a cascade of IIR biquad sections —
// a larger multiple-wordlength kernel where feedback coefficients need
// more precision than feed-forward ones. It demonstrates resource limits
// (the paper's N_y input, Table 1) alongside the automatic
// minimal-resource mode, and prints the resulting datapaths.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mwl "repro"
)

func main() {
	sections := flag.Int("sections", 2, "number of biquad sections")
	dataW := flag.Int("data", 10, "data wordlength (bits)")
	flag.Parse()

	// Feed-forward b coefficients quantise harder than feedback a ones.
	g, err := mwl.BiquadCascadeGraph(*sections, *dataW, [3]int{8, 6, 8}, [2]int{12, 12}, 24)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IIR cascade: %d sections, %d operations, λ_min = %d\n\n", *sections, g.N(), lmin)

	ctx := context.Background()
	lambda := lmin + lmin/3
	fmt.Printf("=== automatic minimal resources, λ = %d ===\n", lambda)
	sol, err := mwl.Solve(ctx, mwl.Problem{Graph: g, Lambda: lambda})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(%d resource configurations tried)\n%s\n", sol.Stats.Configs, sol.Datapath.Render(g, lib))

	fmt.Printf("=== fixed N_y: 2 multipliers, 2 adders, λ = %d ===\n", lambda)
	fixed := mwl.SolveOptions{Limits: map[string]int{"mul": 2, "add": 2}}
	sol2, err := mwl.Solve(ctx, mwl.Problem{Graph: g, Lambda: lambda, Options: fixed})
	if err != nil {
		// Tight fixed limits can be infeasible for the λ; report and
		// retry with a relaxed constraint, as a user of the N_y input
		// would.
		fmt.Printf("infeasible under fixed limits: %v\n", err)
		lambda = 2 * lmin
		fmt.Printf("retrying with λ = %d\n", lambda)
		sol2, err = mwl.Solve(ctx, mwl.Problem{Graph: g, Lambda: lambda, Options: fixed})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(sol2.Datapath.Render(g, lib))
}
