// Command errorspec demonstrates the error-specification flow — the
// paper's stated future work: start from a full-precision FIR filter,
// derive per-operation wordlengths from an output-error budget
// (mwl.DeriveWordlengths), then allocate datapaths for the original and
// the trimmed graphs and compare implementation areas across a range of
// budgets. Looser error specs buy smaller datapaths.
package main

import (
	"context"
	"fmt"
	"log"

	mwl "repro"
)

func main() {
	// A 7-tap FIR authored generously: 16-bit samples, 16-bit
	// coefficients, 24-bit accumulator. In a real flow these widths come
	// from the designer's worst-case analysis; the error spec then trims
	// the fat.
	g, err := mwl.FIRGraph(16, []int{16, 16, 16, 16, 16, 16, 16}, 24)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	lambda := lmin + lmin/4

	ctx := context.Background()
	base, err := mwl.Solve(ctx, mwl.Problem{Graph: g, Lambda: lambda})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-precision FIR: %d operations, λ = %d, datapath area %d\n\n",
		g.N(), lambda, base.Area)

	fmt.Printf("%12s %8s %10s %10s %12s\n", "error budget", "trims", "dedicated", "datapath", "saving vs full")
	for _, bits := range []int{20, 14, 10, 6} {
		budget := 1.0 / float64(int64(1)<<uint(bits))
		res, err := mwl.DeriveWordlengths(g, lib, mwl.ErrorSpecConfig{
			MaxAbsError: budget,
			Seed:        1,
			Vectors:     24,
		})
		if err != nil {
			log.Fatal(err)
		}
		// λ_min may fall after trimming; keep the original constraint,
		// which remains feasible (latencies only shrink).
		sol, err := mwl.Solve(ctx, mwl.Problem{Graph: res.Graph, Lambda: lambda})
		if err != nil {
			log.Fatal(err)
		}
		saving := 100 * float64(base.Area-sol.Area) / float64(base.Area)
		fmt.Printf("        2^-%02d %8d %10d %10d %11.1f%%\n",
			bits, len(res.Trims), res.AreaAfter, sol.Area, saving)
	}
	fmt.Println("\n(dedicated = every operation on its own resource, the optimizer's")
	fmt.Println(" internal objective; datapath = area after DPAlloc resource sharing)")
}
