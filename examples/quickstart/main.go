// Command quickstart is the minimal tour of the mwl public API: build a
// small multiple-wordlength sequencing graph, describe an allocation as
// a Problem, and solve it with several registered methods — the DPAlloc
// heuristic at a tight and a relaxed latency constraint, the two-stage
// baseline, and the exact optimum.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	mwl "repro"
)

func main() {
	// y = (a*b) + (c*d) + e with heterogeneous wordlengths: one wide and
	// one narrow product.
	g := mwl.NewGraph()
	m1 := g.AddOp("m1", mwl.Mul, mwl.MulSig(16, 14)) // wide product
	m2 := g.AddOp("m2", mwl.Mul, mwl.MulSig(8, 6))   // narrow product
	s1 := g.AddOp("s1", mwl.Add, mwl.AddSig(24))
	s2 := g.AddOp("s2", mwl.Add, mwl.AddSig(24))
	for _, dep := range [][2]mwl.OpID{{m1, s1}, {m2, s1}, {s1, s2}} {
		if err := g.AddDep(dep[0], dep[1]); err != nil {
			log.Fatal(err)
		}
	}

	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("λ_min = %d cycles\nregistered methods: %v\n\n", lmin, mwl.Methods())

	ctx := context.Background()
	for _, lambda := range []int{lmin, lmin + lmin/2} {
		fmt.Printf("=== λ = %d ===\n", lambda)
		// Method "" is DefaultMethod, the paper's Algorithm DPAlloc.
		sol, err := mwl.Solve(ctx, mwl.Problem{Graph: g, Lambda: lambda})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DPAlloc heuristic (%d iterations, %d refinements):\n%s",
			sol.Stats.Iterations, sol.Stats.Refinements, sol.Datapath.Render(g, lib))

		for _, method := range []string{"twostage", "optimal"} {
			sol, err := mwl.Get(method).Solve(ctx, mwl.Problem{Method: method, Graph: g, Lambda: lambda})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s area %d (in %v)\n", method+":", sol.Area, sol.Elapsed.Round(time.Microsecond))
		}
		fmt.Println()
	}
}
