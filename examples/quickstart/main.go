// Command quickstart is the minimal tour of the mwl public API: build a
// small multiple-wordlength sequencing graph, allocate a datapath with
// the DPAlloc heuristic at a tight and a relaxed latency constraint, and
// compare with the two-stage baseline and the exact optimum.
package main

import (
	"fmt"
	"log"

	mwl "repro"
)

func main() {
	// y = (a*b) + (c*d) + e with heterogeneous wordlengths: one wide and
	// one narrow product.
	g := mwl.NewGraph()
	m1 := g.AddOp("m1", mwl.Mul, mwl.MulSig(16, 14)) // wide product
	m2 := g.AddOp("m2", mwl.Mul, mwl.MulSig(8, 6))   // narrow product
	s1 := g.AddOp("s1", mwl.Add, mwl.AddSig(24))
	s2 := g.AddOp("s2", mwl.Add, mwl.AddSig(24))
	for _, dep := range [][2]mwl.OpID{{m1, s1}, {m2, s1}, {s1, s2}} {
		if err := g.AddDep(dep[0], dep[1]); err != nil {
			log.Fatal(err)
		}
	}

	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("λ_min = %d cycles\n\n", lmin)

	for _, lambda := range []int{lmin, lmin + lmin/2} {
		fmt.Printf("=== λ = %d ===\n", lambda)
		dp, stats, err := mwl.Allocate(g, lib, lambda, mwl.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DPAlloc heuristic (%d iterations, %d refinements):\n%s",
			stats.Iterations, stats.Refinements, dp.Render(g, lib))

		ts, err := mwl.AllocateTwoStage(g, lib, lambda)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("two-stage baseline [4]: area %d\n", ts.Area(lib))

		opt, err := mwl.AllocateOptimal(g, lib, lambda)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exact optimum [5]:      area %d\n\n", opt.Area(lib))
	}
}
