// Command rtlflow walks the complete path from sequencing graph to
// hardware: allocate a datapath for the paper's Fig. 1 example, complete
// it to the register-transfer level (register binding + interconnect
// estimation), and emit the synthesisable Verilog module.
package main

import (
	"context"
	"fmt"
	"log"

	mwl "repro"
)

func main() {
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	lambda := lmin + 2

	sol, err := mwl.Solve(context.Background(), mwl.Problem{Graph: g, Lambda: lambda})
	if err != nil {
		log.Fatal(err)
	}
	dp := sol.Datapath
	fmt.Printf("allocated in %d iterations (%d wordlength refinements):\n%s\n",
		sol.Stats.Iterations, sol.Stats.Refinements, dp.Render(g, lib))

	plan, err := mwl.AllocateRegisters(g, lib, dp, mwl.RegisterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("register-transfer completion:\n")
	fmt.Printf("  %d registers", len(plan.Registers))
	for i, r := range plan.Registers {
		fmt.Printf("%s r%d[%d bits]×%d values", sep(i), i, r.Width, len(r.Values))
	}
	fmt.Printf("\n  area: functional units %d + registers %d + muxes %d = %d\n\n",
		plan.FUArea, plan.RegArea, plan.MuxArea, plan.TotalArea())

	src, err := mwl.GenerateVerilog("fig1_datapath", g, lib, dp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated Verilog:")
	fmt.Println(src)
}

func sep(i int) string {
	if i == 0 {
		return ":"
	}
	return ","
}
