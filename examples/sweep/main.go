// Command sweep traces the latency/area trade-off at the heart of the
// paper's Fig. 3: as the latency constraint relaxes from λ_min, the
// DPAlloc heuristic converts slack into resource sharing (small
// operations ride in larger, slower units) while the two-stage and
// descending-wordlength baselines cannot, because they fix latencies
// before binding. The workload is an IIR biquad cascade.
package main

import (
	"fmt"
	"log"

	mwl "repro"
)

func main() {
	g, err := mwl.BiquadCascadeGraph(2, 12, [3]int{10, 8, 10}, [2]int{14, 14}, 24)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-section IIR biquad cascade: %d operations, λ_min = %d cycles\n\n", g.N(), lmin)
	fmt.Printf("%8s %10s %10s %10s %12s\n", "λ", "DPAlloc", "two-stage", "descend", "win vs 2-stage")

	for relax := 0; relax <= 50; relax += 10 {
		lambda := lmin + lmin*relax/100
		h, _, err := mwl.Allocate(g, lib, lambda, mwl.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ts, err := mwl.AllocateTwoStage(g, lib, lambda)
		if err != nil {
			log.Fatal(err)
		}
		de, err := mwl.AllocateDescending(g, lib, lambda)
		if err != nil {
			log.Fatal(err)
		}
		win := 100 * float64(ts.Area(lib)-h.Area(lib)) / float64(h.Area(lib))
		fmt.Printf("%7d %10d %10d %10d %11.1f%%\n",
			lambda, h.Area(lib), ts.Area(lib), de.Area(lib), win)
	}

	fmt.Println("\nDatapath at the most relaxed constraint:")
	lambda := lmin + lmin/2
	dp, _, err := mwl.Allocate(g, lib, lambda, mwl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dp.Render(g, lib))
}
