// Command sweep traces the latency/area trade-off at the heart of the
// paper's Fig. 3: as the latency constraint relaxes from λ_min, the
// DPAlloc heuristic converts slack into resource sharing (small
// operations ride in larger, slower units) while the two-stage and
// descending-wordlength baselines cannot, because they fix latencies
// before binding. The workload is an IIR biquad cascade.
//
// The whole sweep is expressed as a batch of Problems solved through an
// mwl.Service: every (λ, method) cell runs concurrently on the worker
// pool, and repeated problems would be served from the memo.
package main

import (
	"context"
	"fmt"
	"log"

	mwl "repro"
)

func main() {
	g, err := mwl.BiquadCascadeGraph(2, 12, [3]int{10, 8, 10}, [2]int{14, 14}, 24)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-section IIR biquad cascade: %d operations, λ_min = %d cycles\n\n", g.N(), lmin)

	methods := []string{"dpalloc", "twostage", "descend"}
	var lambdas []int
	var batch []mwl.Problem
	for relax := 0; relax <= 50; relax += 10 {
		lambda := lmin + lmin*relax/100
		lambdas = append(lambdas, lambda)
		for _, m := range methods {
			batch = append(batch, mwl.Problem{Method: m, Graph: g, Lambda: lambda})
		}
	}

	svc := mwl.NewService(0) // one worker per CPU
	results := svc.SolveBatch(context.Background(), batch)

	fmt.Printf("%8s %10s %10s %10s %12s\n", "λ", "DPAlloc", "two-stage", "descend", "win vs 2-stage")
	for i, lambda := range lambdas {
		row := results[i*len(methods) : (i+1)*len(methods)]
		for _, r := range row {
			if r.Err != nil {
				log.Fatal(r.Err)
			}
		}
		h, ts, de := row[0].Solution, row[1].Solution, row[2].Solution
		win := 100 * float64(ts.Area-h.Area) / float64(h.Area)
		fmt.Printf("%7d %10d %10d %10d %11.1f%%\n", lambda, h.Area, ts.Area, de.Area, win)
	}

	fmt.Println("\nDatapath at the most relaxed constraint:")
	sol, err := svc.Solve(context.Background(), mwl.Problem{Graph: g, Lambda: lmin + lmin/2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sol.Datapath.Render(g, lib))
}
