// Command motivational reproduces the paper's Fig. 1: a multiple-
// wordlength sequencing graph and its scheduling, resource binding and
// wordlength selection. It shows the central effect of the paper —
// resources can execute operations up to the wordlength of the resource,
// even when implementation in a larger resource gives a longer latency,
// so latency slack buys area through sharing.
package main

import (
	"context"
	"fmt"
	"log"

	mwl "repro"
)

func main() {
	g := mwl.Fig1Graph()
	lib := mwl.DefaultLibrary()

	fmt.Println("Fig. 1(a): multiple wordlength sequencing graph")
	for _, o := range g.Ops() {
		fmt.Printf("  %-3s %s %-6v ->", o.Name, o.Spec.Type, o.Spec.Sig)
		for _, s := range g.Succ(o.ID) {
			fmt.Printf(" %s", g.Op(s).Name)
		}
		fmt.Println()
	}

	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nλ_min = %d (adders: 2 cycles; n×m multiplier: ⌈(n+m)/8⌉ cycles)\n", lmin)

	fmt.Println("\nFig. 1(b): scheduling, resource binding and wordlength selection")
	for _, relax := range []int{0, 50} {
		lambda := lmin + lmin*relax/100
		sol, err := mwl.Solve(context.Background(), mwl.Problem{Graph: g, Lambda: lambda})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nλ = %d (+%d%%):\n%s", lambda, relax, sol.Datapath.Render(g, lib))
		if err := sol.Datapath.Verify(g, lib, lambda); err != nil {
			log.Fatalf("illegal datapath: %v", err)
		}
	}
}
