// Command pipelined explores the throughput/area trade-off of
// functionally pipelined datapaths: a FIR filter is allocated for a
// range of initiation intervals, from fully overlapped (II = MinII, one
// result every few cycles) to sequential (II = λ, the paper's setting).
// Tight intervals leave little room for resource sharing — iterations
// overlap, so units are busy with the previous sample — and area rises
// as II falls. Each point is one Problem solved by the registered
// "pipelined" method.
package main

import (
	"context"
	"fmt"
	"log"

	mwl "repro"
)

func main() {
	g, err := mwl.FIRGraph(12, []int{6, 8, 10, 12, 10, 8, 6}, 24)
	if err != nil {
		log.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		log.Fatal(err)
	}
	lambda := lmin + lmin/4
	minII := mwl.MinII(g, lib)
	ctx := context.Background()

	fmt.Printf("7-tap FIR: %d operations, λ = %d cycles, MinII = %d\n", g.N(), lambda, minII)
	fmt.Printf("one new sample every II cycles; lower II = higher throughput\n\n")
	fmt.Printf("%6s %12s %10s %12s\n", "II", "throughput", "area", "instances")

	for ii := minII; ii <= lambda; ii += max(1, (lambda-minII)/6) {
		sol, err := mwl.Solve(ctx, mwl.Problem{Method: "pipelined", Graph: g, Lambda: lambda, II: ii})
		if err != nil {
			log.Fatal(err)
		}
		if err := mwl.VerifyPipelined(g, lib, sol.Datapath, lambda, ii); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %12s %10d %12d\n",
			ii, fmt.Sprintf("1/%d cyc", ii), sol.Area, len(sol.Datapath.Instances))
	}

	fmt.Println("\nunpipelined reference (DPAlloc, one iteration at a time):")
	sol, err := mwl.Solve(ctx, mwl.Problem{Graph: g, Lambda: lambda})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %12s %10d %12d\n", "-", fmt.Sprintf("1/%d cyc", lambda), sol.Area, len(sol.Datapath.Instances))
}
