// Cross-method integration tests: every allocator must produce legal
// datapaths on shared workloads, and the quality ordering
// optimum ≤ heuristic must hold wherever the optimum is computable.
package mwl_test

import (
	"context"
	"testing"
	"time"

	mwl "repro"
	"repro/internal/core"
	"repro/internal/descend"
	"repro/internal/exact"
	"repro/internal/expt"
	"repro/internal/ilp"
	"repro/internal/tgff"
	"repro/internal/twostage"
)

func TestAllMethodsLegalOnRandomGraphs(t *testing.T) {
	lib := mwl.DefaultLibrary()
	for _, n := range []int{1, 3, 6, 9, 14} {
		graphs, err := tgff.Batch(n, 10, 7000, tgff.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for gi, g := range graphs {
			lmin, err := mwl.MinLambda(g, lib)
			if err != nil {
				t.Fatal(err)
			}
			for _, relax := range []float64{0, 0.15, 0.30} {
				lambda := expt.Lambda(lmin, relax)
				h, _, err := core.Allocate(g, lib, lambda, core.Options{})
				if err != nil {
					t.Fatalf("n=%d g=%d relax=%v heuristic: %v", n, gi, relax, err)
				}
				if err := h.Verify(g, lib, lambda); err != nil {
					t.Fatalf("n=%d g=%d heuristic illegal: %v", n, gi, err)
				}
				ts, _, err := twostage.Allocate(g, lib, lambda)
				if err != nil {
					t.Fatalf("n=%d g=%d twostage: %v", n, gi, err)
				}
				if err := ts.Verify(g, lib, lambda); err != nil {
					t.Fatalf("n=%d g=%d twostage illegal: %v", n, gi, err)
				}
				de, err := descend.Allocate(g, lib, lambda)
				if err != nil {
					t.Fatalf("n=%d g=%d descend: %v", n, gi, err)
				}
				if err := de.Verify(g, lib, lambda); err != nil {
					t.Fatalf("n=%d g=%d descend illegal: %v", n, gi, err)
				}
			}
		}
	}
}

func TestOptimumOrdering(t *testing.T) {
	lib := mwl.DefaultLibrary()
	for _, n := range []int{2, 4, 6, 8} {
		graphs, err := tgff.Batch(n, 8, 8000, tgff.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for gi, g := range graphs {
			lmin, err := mwl.MinLambda(g, lib)
			if err != nil {
				t.Fatal(err)
			}
			lambda := expt.Lambda(lmin, 0.2)
			h, _, err := core.Allocate(g, lib, lambda, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Exhaustive search with the heuristic's area priming the
			// incumbent and a node budget: instances whose search is
			// capped prove nothing and are skipped.
			opt, st, err := exact.Allocate(g, lib, lambda, exact.Options{
				UpperBound: h.Area(lib),
				NodeLimit:  500_000,
			})
			if st.Capped {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if opt.Area(lib) > h.Area(lib) {
				t.Fatalf("n=%d g=%d: optimum %d > heuristic %d", n, gi, opt.Area(lib), h.Area(lib))
			}
			// The ILP must agree with the exhaustive optimum.
			r, err := ilp.Solve(g, lib, lambda, ilp.Options{Incumbent: h, TimeLimit: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if !r.TimedOut && r.Area != opt.Area(lib) {
				t.Fatalf("n=%d g=%d: ILP %d != exact %d", n, gi, r.Area, opt.Area(lib))
			}
		}
	}
}

func TestWorkloadsEndToEnd(t *testing.T) {
	lib := mwl.DefaultLibrary()
	fir, err := mwl.FIRGraph(12, []int{4, 6, 8, 10, 12, 10, 8, 6, 4}, 24)
	if err != nil {
		t.Fatal(err)
	}
	iir, err := mwl.BiquadCascadeGraph(2, 10, [3]int{8, 6, 8}, [2]int{12, 12}, 24)
	if err != nil {
		t.Fatal(err)
	}
	horner, err := mwl.HornerGraph(10, []int{8, 6, 4, 12}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*mwl.Graph{
		"fig1": mwl.Fig1Graph(), "fir": fir, "iir": iir, "horner": horner,
	} {
		lmin, err := mwl.MinLambda(g, lib)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, relax := range []float64{0, 0.25, 0.5} {
			lambda := expt.Lambda(lmin, relax)
			dp, stats, err := core.Allocate(g, lib, lambda, core.Options{})
			if err != nil {
				t.Fatalf("%s relax=%v: %v", name, relax, err)
			}
			if err := dp.Verify(g, lib, lambda); err != nil {
				t.Fatalf("%s relax=%v illegal: %v", name, relax, err)
			}
			if stats.Kinds == 0 {
				t.Fatalf("%s: no kinds extracted", name)
			}
		}
	}
}

// TestSlackNeverHurtsMuch: the heuristic's area at a relaxed λ should
// very rarely exceed its area at a tight λ; allow slack on individual
// graphs but fail if the aggregate regresses.
func TestSlackAggregateImprovement(t *testing.T) {
	lib := mwl.DefaultLibrary()
	graphs, err := tgff.Batch(12, 20, 9000, tgff.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var tight, relaxed int64
	for _, g := range graphs {
		lmin, err := mwl.MinLambda(g, lib)
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := core.Allocate(g, lib, lmin, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := core.Allocate(g, lib, expt.Lambda(lmin, 0.3), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tight += a.Area(lib)
		relaxed += b.Area(lib)
	}
	if relaxed > tight {
		t.Fatalf("aggregate area grew with slack: tight %d relaxed %d", tight, relaxed)
	}
}

// TestPublicAPISurface exercises the facade exactly as the package doc
// comment advertises.
func TestPublicAPISurface(t *testing.T) {
	g := mwl.NewGraph()
	x := g.AddOp("x", mwl.Mul, mwl.MulSig(12, 8))
	y := g.AddOp("y", mwl.Add, mwl.AddSig(16))
	if err := g.AddDep(x, y); err != nil {
		t.Fatal(err)
	}
	lib := mwl.DefaultLibrary()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mwl.Solve(context.Background(), mwl.Problem{Graph: g, Lambda: lmin + 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Iterations < 1 || sol.Datapath.Render(g, lib) == "" {
		t.Fatal("facade results empty")
	}
	rnd, err := mwl.GenerateRandom(mwl.RandomConfig{N: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rnd.N() != 5 {
		t.Fatal("GenerateRandom broken")
	}
}
