package mwl

import (
	"context"
	"time"

	"repro/internal/anneal"
)

// The "anneal" method: a simulated-annealing allocator over joint
// (schedule, binding) moves — operator merge/split, operation
// re-binding, and scheduling-slot swaps — with Metropolis acceptance
// and geometric cooling. It trades a move budget for solution quality:
// on irregular graphs it can undercut the one-shot DPAlloc heuristic,
// and with Options.Seed fixed it is bit-reproducible. Tuning knobs:
// Options.Seed, AnnealMoves, AnnealInitTemp, AnnealCooling.

func init() {
	mustRegister("anneal", "simulated annealing over (schedule, binding) moves; seeded, geometric cooling",
		SolverFunc(solveAnneal))
}

func solveAnneal(ctx context.Context, p Problem) (Solution, error) {
	lib, err := p.prepare(ctx, false)
	if err != nil {
		return Solution{}, err
	}
	t0 := time.Now()
	dp, st, err := anneal.AllocateCtx(ctx, p.Graph, lib, p.Lambda, anneal.Options{
		Seed:     p.Options.Seed,
		Moves:    p.Options.AnnealMoves,
		InitTemp: p.Options.AnnealInitTemp,
		Cooling:  p.Options.AnnealCooling,
	})
	if err != nil {
		return Solution{}, err
	}
	return newSolution("anneal", lib, dp, time.Since(t0), SolveStats{
		Iterations: st.Epochs,
		Moves:      st.Moves,
		Accepted:   st.Accepted,
		Merges:     st.Merges,
		Evals:      st.Evals,
	}), nil
}
