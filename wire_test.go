// Tests for the v1 JSON wire schema: Problem/Solution round-trips and
// canonical problem hashing.
package mwl_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	mwl "repro"
)

func wireProblem(t *testing.T) mwl.Problem {
	t.Helper()
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return mwl.Problem{
		Method: "ilp",
		Graph:  g,
		Lambda: 30,
		Options: mwl.SolveOptions{
			TimeLimit: 2 * time.Second,
			NodeLimit: 1000,
			Limits:    map[string]int{"mul": 2},
		},
	}
}

func TestProblemJSONRoundTrip(t *testing.T) {
	p := wireProblem(t)
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q mwl.Problem
	if err := json.Unmarshal(blob, &q); err != nil {
		t.Fatal(err)
	}
	if q.Method != p.Method || q.Lambda != p.Lambda || q.II != p.II {
		t.Fatalf("scalars differ: %+v vs %+v", q, p)
	}
	if !reflect.DeepEqual(q.Options, p.Options) {
		t.Fatalf("options differ: %+v vs %+v", q.Options, p.Options)
	}
	blob2, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshal not canonical:\n%s\n%s", blob, blob2)
	}
	// The decoded graph must solve to the same datapath.
	a, err := mwl.Solve(context.Background(), mwl.Problem{Graph: p.Graph, Lambda: p.Lambda})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mwl.Solve(context.Background(), mwl.Problem{Graph: q.Graph, Lambda: q.Lambda})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Datapath, b.Datapath) {
		t.Fatal("graph did not survive the round-trip")
	}
}

func TestProblemJSONDefaultsLibrary(t *testing.T) {
	// A problem with no library on the wire gets the paper's model.
	var p mwl.Problem
	if err := json.Unmarshal([]byte(`{"graph":{"ops":[{"type":"mul","hi":8}],"deps":[]},"lambda":4}`), &p); err != nil {
		t.Fatal(err)
	}
	sol, err := mwl.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	// ⌈(8+8)/8⌉ = 2 cycles, area 64 for the paper's default model.
	if sol.Area != 64 || sol.Makespan != 2 {
		t.Fatalf("default library not applied: area %d makespan %d", sol.Area, sol.Makespan)
	}
}

func TestLibrarySpecOnTheWire(t *testing.T) {
	p := wireProblem(t)
	p.Library = mwl.LibrarySpec{AdderLatency: 1, MulBitsPerCycle: 4}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"adder_latency":1`) {
		t.Fatalf("library spec missing from wire form: %s", blob)
	}
	var q mwl.Problem
	if err := json.Unmarshal(blob, &q); err != nil {
		t.Fatal(err)
	}
	if q.Library != p.Library {
		t.Fatalf("library spec differs: %+v vs %+v", q.Library, p.Library)
	}
}

func TestSolutionJSONRoundTrip(t *testing.T) {
	p := wireProblem(t)
	p.Method = "" // dpalloc
	p.Options = mwl.SolveOptions{}
	sol, err := mwl.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(sol)
	if err != nil {
		t.Fatal(err)
	}
	var back mwl.Solution
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sol) {
		t.Fatalf("solution round-trip differs:\n%+v\n%+v", back, sol)
	}
	// The datapath must still verify against the original graph.
	if err := back.Datapath.Verify(p.Graph, mwl.DefaultLibrary(), p.Lambda); err != nil {
		t.Fatalf("round-tripped datapath illegal: %v", err)
	}
}

// TestSolveStatsWire pins the effort-counter wire contract: every field
// survives a round-trip, and payloads from servers predating the
// Merges/Evals fields decode with those fields zero.
func TestSolveStatsWire(t *testing.T) {
	st := mwl.SolveStats{
		Iterations:  3,
		Refinements: 5,
		Configs:     2,
		Nodes:       9,
		Vars:        11,
		Rows:        13,
		TimedOut:    true,
		Moves:       17,
		Accepted:    7,
		Merges:      4,
		Evals:       19,
		Winner:      "dpalloc",
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back mwl.SolveStats
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("stats round-trip differs:\n%+v\n%+v", back, st)
	}
	for _, key := range []string{"merges", "evals", "moves"} {
		if !strings.Contains(string(blob), `"`+key+`"`) {
			t.Fatalf("wire encoding lacks %q: %s", key, blob)
		}
	}

	// An old-schema payload has no effort fields at all.
	old := []byte(`{"iterations":3,"refinements":5,"configs":2}`)
	var legacy mwl.SolveStats
	if err := json.Unmarshal(old, &legacy); err != nil {
		t.Fatal(err)
	}
	want := mwl.SolveStats{Iterations: 3, Refinements: 5, Configs: 2}
	if legacy != want {
		t.Fatalf("legacy decode = %+v, want %+v", legacy, want)
	}
}

// TestSolveStatsPopulated checks the new counters actually flow out of
// the solvers: dpalloc reports binder merges/evaluations, anneal reports
// accepted fusions and schedules run.
func TestSolveStatsPopulated(t *testing.T) {
	p := wireProblem(t)
	p.Method = ""
	p.Options = mwl.SolveOptions{}
	sol, err := mwl.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Evals == 0 {
		t.Fatalf("dpalloc reported no binder evaluations: %+v", sol.Stats)
	}
	p.Method = "anneal"
	p.Options = mwl.SolveOptions{Seed: 3, AnnealMoves: 2000}
	sol, err = mwl.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Evals == 0 {
		t.Fatalf("anneal reported no schedule evaluations: %+v", sol.Stats)
	}
}

func TestProblemHash(t *testing.T) {
	p := wireProblem(t)
	h1, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash not stable: %q vs %q", h1, h2)
	}
	// The default method resolves before hashing: "" and "dpalloc" are
	// the same problem.
	a, b := p, p
	a.Method = ""
	b.Method = "dpalloc"
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Fatal("empty method and DefaultMethod hash differently")
	}
	// Any material change must change the hash.
	c := p
	c.Lambda++
	hc, _ := c.Hash()
	if hc == h1 {
		t.Fatal("λ change did not change the hash")
	}
	d := p
	d.Method = "twostage"
	hd, _ := d.Hash()
	if hd == h1 {
		t.Fatal("method change did not change the hash")
	}
	// In-memory library overrides are unhashable by design.
	e := p
	e.Lib = mwl.DefaultLibrary()
	if _, err := e.Hash(); err == nil {
		t.Fatal("problem with Lib override hashed")
	}
}

// TestStreamResultWire: the NDJSON stream record carries the problem
// index alongside the standard batch result fields, and FromWire
// reverses the conversion — including the infeasible classification,
// which must survive a Wire/FromWire/Wire round trip so relayed
// verdicts keep their 422-vs-500 meaning.
func TestStreamResultWire(t *testing.T) {
	ok := mwl.BatchResult{Solution: mwl.Solution{Method: "dpalloc", Area: 42}}
	rec := mwl.WireStream(3, ok)
	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"index":3`) {
		t.Fatalf("record not index-tagged: %s", blob)
	}
	var back mwl.StreamResultWire
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Index != 3 || back.Solution == nil || back.Solution.Area != 42 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if r := back.FromWire(); r.Err != nil || r.Solution.Area != 42 {
		t.Fatalf("FromWire: %+v", r)
	}

	// Zero index must still appear on the wire: clients key on it.
	if blob, _ := json.Marshal(mwl.WireStream(0, ok)); !strings.Contains(string(blob), `"index":0`) {
		t.Fatalf("index 0 omitted: %s", blob)
	}

	infeasible := mwl.BatchResultWire{Error: "lambda below minimum", Infeasible: true}
	r := infeasible.FromWire()
	if r.Err == nil || !mwl.IsInfeasible(r.Err) {
		t.Fatalf("FromWire dropped infeasibility: %v", r.Err)
	}
	if again := r.Wire(); !again.Infeasible || again.Error == "" {
		t.Fatalf("Wire round trip lost infeasibility: %+v", again)
	}

	plain := mwl.BatchResultWire{Error: "solver exploded"}
	if r := plain.FromWire(); r.Err == nil || mwl.IsInfeasible(r.Err) || r.Err.Error() != "solver exploded" {
		t.Fatalf("plain error mangled: %v", r.Err)
	}

	if r := (mwl.BatchResultWire{}).FromWire(); r.Err == nil {
		t.Fatal("empty wire record produced no error")
	}
}
