// Tests for the Solver API: registry behaviour, bit-for-bit equivalence
// of the registered methods with the underlying allocators, and prompt
// cancellation through the context plumbing.
package mwl_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	mwl "repro"
	"repro/internal/core"
	"repro/internal/descend"
	"repro/internal/exact"
	"repro/internal/ilp"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/twostage"
)

func TestRegistryHasAllSixMethods(t *testing.T) {
	want := []string{"descend", "dpalloc", "ilp", "optimal", "pipelined", "twostage"}
	got := mwl.Methods()
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("method %q not registered (have %v)", name, got)
		}
		if _, ok := mwl.Lookup(name); !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if mwl.Describe(name) == "" {
			t.Errorf("method %q has no description", name)
		}
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	stub := mwl.SolverFunc(func(ctx context.Context, p mwl.Problem) (mwl.Solution, error) {
		return mwl.Solution{}, nil
	})
	if err := mwl.Register("test-dup", stub); err != nil {
		t.Fatal(err)
	}
	if err := mwl.Register("test-dup", stub); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := mwl.Register("dpalloc", stub); err == nil {
		t.Fatal("shadowing a built-in accepted")
	}
	if err := mwl.Register("", stub); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := mwl.Register("test-nil", nil); err == nil {
		t.Fatal("nil solver accepted")
	}
}

func TestGetUnknownMethodIsSafe(t *testing.T) {
	_, err := mwl.Get("no-such-method").Solve(context.Background(), mwl.Problem{Graph: mwl.Fig1Graph(), Lambda: 99})
	if !errors.Is(err, mwl.ErrUnknownMethod) {
		t.Fatalf("err = %v, want ErrUnknownMethod", err)
	}
	_, err = mwl.Solve(context.Background(), mwl.Problem{Method: "bogus", Graph: mwl.Fig1Graph(), Lambda: 99})
	if !errors.Is(err, mwl.ErrUnknownMethod) {
		t.Fatalf("Solve err = %v, want ErrUnknownMethod", err)
	}
}

// equivCase is one (graph, λ[, ii]) cell of the equivalence corpus.
type equivCase struct {
	name   string
	g      *mwl.Graph
	lambda int
}

// equivCorpus returns the Fig. 1 graph and a TGFF random graph, each at
// a tight and a relaxed latency constraint.
func equivCorpus(t *testing.T, n int) []equivCase {
	t.Helper()
	lib := mwl.DefaultLibrary()
	var out []equivCase
	fig1 := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(fig1, lib)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out,
		equivCase{"fig1/tight", fig1, lmin},
		equivCase{"fig1/relaxed", fig1, lmin + lmin/4},
	)
	rnd, err := mwl.GenerateRandom(mwl.RandomConfig{N: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rmin, err := mwl.MinLambda(rnd, lib)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out,
		equivCase{"tgff/tight", rnd, rmin},
		equivCase{"tgff/relaxed", rnd, rmin + rmin/4},
	)
	return out
}

// TestSolveMatchesAllocators: every registered method must produce a
// datapath identical (schedule, binding, kinds) to the underlying
// allocator it wraps on the equivalence corpus — Solve adds the
// envelope, never a different answer.
func TestSolveMatchesAllocators(t *testing.T) {
	ctx := context.Background()
	lib := mwl.DefaultLibrary()

	check := func(t *testing.T, method string, p mwl.Problem, legacy *mwl.Datapath) {
		t.Helper()
		sol, err := mwl.Get(method).Solve(ctx, p)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !reflect.DeepEqual(sol.Datapath, legacy) {
			t.Fatalf("%s: Solve and legacy datapaths differ:\nnew: %+v\nold: %+v", method, sol.Datapath, legacy)
		}
		if sol.Area != legacy.Area(lib) {
			t.Fatalf("%s: Area %d != %d", method, sol.Area, legacy.Area(lib))
		}
		if sol.Makespan != legacy.Makespan(lib) {
			t.Fatalf("%s: Makespan %d != %d", method, sol.Makespan, legacy.Makespan(lib))
		}
	}

	for _, c := range equivCorpus(t, 9) {
		t.Run(c.name, func(t *testing.T) {
			p := mwl.Problem{Graph: c.g, Lambda: c.lambda}

			direct, _, err := core.Allocate(c.g, lib, c.lambda, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			check(t, "dpalloc", p, direct)

			ts, _, err := twostage.Allocate(c.g, lib, c.lambda)
			if err != nil {
				t.Fatal(err)
			}
			check(t, "twostage", p, ts)

			de, err := descend.Allocate(c.g, lib, c.lambda)
			if err != nil {
				t.Fatal(err)
			}
			check(t, "descend", p, de)

			ii := c.lambda // sequential initiation: the paper's setting
			pipe, _, err := pipeline.Allocate(c.g, lib, c.lambda, ii, pipeline.Options{})
			if err != nil {
				t.Fatal(err)
			}
			pp := p
			pp.II = ii
			check(t, "pipelined", pp, pipe)
		})
	}

	// The exhaustive and ILP optima are slower; run them on the smaller
	// corpus cells only (Fig. 1 and a 7-op TGFF graph, tight λ).
	for _, c := range equivCorpus(t, 7)[:3] {
		if strings.HasPrefix(c.name, "tgff") {
			c.name = "small-" + c.name
		}
		t.Run(c.name+"/exact", func(t *testing.T) {
			p := mwl.Problem{Graph: c.g, Lambda: c.lambda}

			opt, _, err := exact.Allocate(c.g, lib, c.lambda, exact.Options{})
			if err != nil {
				t.Fatal(err)
			}
			check(t, "optimal", p, opt)

			r, err := ilp.Solve(c.g, lib, c.lambda, ilp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			check(t, "ilp", p, r.DP)
		})
	}
}

// TestSolveLimitsMatchDirect: the wire-level Limits map must reproduce
// the allocator's typed Options.Limits behaviour.
func TestSolveLimitsMatchDirect(t *testing.T) {
	lib := mwl.DefaultLibrary()
	g := mwl.Fig1Graph()
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 2 * lmin
	direct, _, err := core.Allocate(g, lib, lambda, core.Options{
		Limits: sched.Limits{mwl.Mul: 2, mwl.Add: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mwl.Solve(context.Background(), mwl.Problem{
		Graph: g, Lambda: lambda,
		Options: mwl.SolveOptions{Limits: map[string]int{"mul": 2, "add": 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.Datapath, direct) {
		t.Fatal("fixed-limits datapaths differ")
	}
}

func TestSolveRejectsIIOnNonPipelined(t *testing.T) {
	g := mwl.Fig1Graph()
	for _, m := range []string{"dpalloc", "twostage", "descend", "optimal", "ilp"} {
		if _, err := mwl.Solve(context.Background(), mwl.Problem{Method: m, Graph: g, Lambda: 50, II: 4}); err == nil {
			t.Errorf("method %s accepted an initiation interval", m)
		}
	}
	if _, err := mwl.Solve(context.Background(), mwl.Problem{Method: "pipelined", Graph: g, Lambda: 50}); err == nil {
		t.Error("pipelined accepted II = 0")
	}
}

// TestPreCanceledContext: every method must fail fast with ctx.Err()
// when handed an already-canceled context.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := mwl.Fig1Graph()
	for _, m := range mwl.Methods() {
		if strings.HasPrefix(m, "test-") {
			continue // stubs from the registry tests
		}
		p := mwl.Problem{Method: m, Graph: g, Lambda: 50}
		if m == "pipelined" {
			p.II = 50
		}
		if _, err := mwl.Solve(ctx, p); !errors.Is(err, context.Canceled) {
			t.Errorf("method %s: err = %v, want context.Canceled", m, err)
		}
	}
}

// TestCancellationIsPrompt: cancelling a long solve on a large graph
// must return ctx.Err() quickly — the satellite acceptance criterion.
func TestCancellationIsPrompt(t *testing.T) {
	lib := mwl.DefaultLibrary()
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 14, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = mwl.Solve(ctx, mwl.Problem{Method: "ilp", Graph: g, Lambda: lmin + lmin/2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancel took %v, want prompt return", elapsed)
	}
}

// TestTwoStageCancellationMidSolve: twostage used to ignore ctx past
// prepare, so a canceled request ran the full stage-2 branch-and-bound
// to the node cap. The binding loop now polls ctx: canceling a solve
// that takes hundreds of milliseconds must return within moments of the
// cancel. (descend's binding-loop cancellation is enforced
// deterministically in internal/descend.)
func TestTwoStageCancellationMidSolve(t *testing.T) {
	lib := mwl.DefaultLibrary()
	// n=60/seed=3 drives stage 2 to its node cap: ~240 ms of binding
	// search on a fast machine, so a 2 ms cancel lands mid-solve with
	// two orders of magnitude to spare.
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = mwl.Solve(ctx, mwl.Problem{Method: "twostage", Graph: g, Lambda: lmin + lmin/3})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v after %v, want context.Canceled", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancel took %v, want prompt return", elapsed)
	}
}

// TestDescendCancellationMidSchedule: descend shares twostage's
// stage-1 configuration search; a context canceled between polls must
// surface as context.Canceled, not be ignored until the solve ends.
func TestDescendCancellationMidSchedule(t *testing.T) {
	g, err := mwl.GenerateRandom(mwl.RandomConfig{N: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := mwl.MinLambda(g, mwl.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = mwl.Solve(ctx, mwl.Problem{Method: "descend", Graph: g, Lambda: lmin + lmin/3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled descend took %v", elapsed)
	}
}
